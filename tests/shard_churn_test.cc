// Randomized churn differential for the sharded path, mirroring
// `dynamic_churn_property_test.cc` one layer up: interleave global
// `Insert`/`Erase`/`Compact` with sharded queries, cross-checking against
// a from-scratch `PointDatabase` rebuild of the merged live set — and run
// queries *concurrently* with the mutation stream (the TSan job builds
// this file too: the cross-shard snapshot publication must be race-free,
// not merely crash-free).

#include <algorithm>
#include <atomic>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "engine/query_engine.h"
#include "shard/sharded_area_query.h"
#include "shard/sharded_database.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

/// Ground truth for the current version: rebuild a monolithic database
/// from the snapshot's live set and brute-force it, then map internal ids
/// back to the sharded global ids.
std::vector<PointId> RebuildTruth(const ShardedDatabase::Snapshot& snap,
                                  const Polygon& area) {
  std::vector<PointId> ids;
  std::vector<Point> pts;
  snap.ForEachLive([&](PointId id, const Point& p) {
    ids.push_back(id);
    pts.push_back(p);
  });
  std::vector<PointId> truth;
  if (!pts.empty()) {
    const PointDatabase rebuilt(pts);
    const BruteForceAreaQuery brute(&rebuilt);
    for (const PointId internal : brute.Run(area, nullptr)) {
      truth.push_back(ids[rebuilt.OriginalId(internal)]);
    }
  }
  std::sort(truth.begin(), truth.end());
  return truth;
}

TEST(ShardChurnTest, ChurnStreamMatchesRebuildAcrossCompactions) {
  Rng rng(9090);
  ShardedDatabase::Options options;
  options.num_shards = 4;
  // Small per-shard threshold: the stream forces several threshold
  // compactions inside individual shards, so verification points land on
  // both sides of rebuilds that the other shards never saw.
  options.shard.compact_threshold = 150;
  ShardedDatabase db(GenerateUniformPoints(1500, kUnit, &rng), options);

  const ShardedAreaQuery methods[] = {
      ShardedAreaQuery(&db, DynamicMethod::kVoronoi),
      ShardedAreaQuery(&db, DynamicMethod::kTraditional),
      ShardedAreaQuery(&db, DynamicMethod::kGridSweep),
      ShardedAreaQuery(&db, DynamicMethod::kBruteForce),
  };
  PolygonSpec spec;
  spec.query_size_fraction = 0.06;

  std::vector<PointId> live;
  db.snapshot()->ForEachLive(
      [&](PointId id, const Point&) { live.push_back(id); });

  QueryContext ctx;
  std::uint64_t verifications = 0;
  for (int op = 0; op < 2000; ++op) {
    const double r = rng.Uniform(0.0, 1.0);
    if (r < 0.40 || live.empty()) {
      const std::optional<PointId> id =
          db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
      if (id.has_value()) live.push_back(*id);
    } else if (r < 0.70) {
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      if (db.Erase(live[at])) {
        live[at] = live.back();
        live.pop_back();
      }
    } else if (r < 0.72) {
      db.Compact();
    }
    if (op % 200 == 199) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
      const std::vector<PointId> truth =
          RebuildTruth(*db.snapshot(), area);
      for (const ShardedAreaQuery& method : methods) {
        EXPECT_EQ(method.Run(area, ctx), truth)
            << "op=" << op << " method=" << method.Name();
        EXPECT_EQ(ctx.stats.candidates,
                  ctx.stats.candidate_hits + ctx.stats.visited_rejected);
        EXPECT_EQ(ctx.stats.shards_hit + ctx.stats.shards_pruned, 4u);
      }
      ++verifications;
    }
  }
  EXPECT_EQ(verifications, 10u);
  EXPECT_GT(db.Compactions(), 0u);
  EXPECT_EQ(db.Size(), live.size());
}

TEST(ShardChurnTest, QueriesConcurrentWithMutationsAreSnapshotConsistent) {
  Rng rng(4321);
  ShardedDatabase::Options options;
  options.num_shards = 4;
  options.shard.compact_threshold = 256;
  ShardedDatabase db(GenerateUniformPoints(3000, kUnit, &rng), options);

  // Frontend engine executes the sharded queries; a separate scatter pool
  // runs their fan-out legs (see the ShardedAreaQuery deadlock rule).
  QueryEngine scatter({.num_threads = 2});
  const ShardedAreaQuery methods[] = {
      ShardedAreaQuery(&db, DynamicMethod::kVoronoi, &scatter),
      ShardedAreaQuery(&db, DynamicMethod::kTraditional, &scatter),
      ShardedAreaQuery(&db, DynamicMethod::kGridSweep, &scatter),
      ShardedAreaQuery(&db, DynamicMethod::kBruteForce, &scatter),
  };
  QueryEngine frontend({.num_threads = 2});
  const int method_ids[] = {
      frontend.RegisterMethod(&methods[0]),
      frontend.RegisterMethod(&methods[1]),
      frontend.RegisterMethod(&methods[2]),
      frontend.RegisterMethod(&methods[3]),
  };

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&db, &stop, w] {
      Rng wrng(800 + w);
      std::vector<PointId> mine;
      while (!stop.load(std::memory_order_relaxed)) {
        const double r = wrng.Uniform(0.0, 1.0);
        if (r < 0.55 || mine.empty()) {
          const std::optional<PointId> id =
              db.Insert({wrng.Uniform(0, 1), wrng.Uniform(0, 1)});
          if (id.has_value()) mine.push_back(*id);
        } else if (r < 0.95) {
          const std::size_t at = static_cast<std::size_t>(wrng.UniformInt(
              0, static_cast<std::int64_t>(mine.size()) - 1));
          db.Erase(mine[at]);
          mine[at] = mine.back();
          mine.pop_back();
        } else if (w == 0) {
          db.Compact();
        }
      }
    });
  }

  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 120; ++i) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    futures.push_back(frontend.Submit(area, method_ids[i % 4]));
  }
  for (std::future<QueryResult>& f : futures) {
    const QueryResult r = f.get();
    // Internal consistency under churn: sorted distinct global ids and a
    // coherent merged stats slot. (Cross-method equality is not asserted
    // mid-churn: two submissions may pin different versions.)
    EXPECT_TRUE(std::is_sorted(r.ids.begin(), r.ids.end()));
    EXPECT_TRUE(std::adjacent_find(r.ids.begin(), r.ids.end()) ==
                r.ids.end());
    EXPECT_EQ(r.stats.results, r.ids.size());
    EXPECT_EQ(r.stats.candidates,
              r.stats.candidate_hits + r.stats.visited_rejected);
    EXPECT_EQ(r.stats.shards_hit + r.stats.shards_pruned, 4u);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();

  // Quiesced: all four sharded methods agree with the rebuild oracle.
  QueryContext ctx;
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
  const std::vector<PointId> truth = RebuildTruth(*db.snapshot(), area);
  for (const ShardedAreaQuery& method : methods) {
    EXPECT_EQ(method.Run(area, ctx), truth) << method.Name();
  }
}

}  // namespace
}  // namespace vaq
