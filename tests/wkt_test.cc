#include "geometry/wkt.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/polygon.h"

namespace vaq {
namespace {

using Kind = WktParseError::Kind;

Kind ParseKind(const std::string& wkt,
               std::size_t max_vertices = kDefaultMaxWktVertices) {
  try {
    ParseWktPolygon(wkt, max_vertices);
  } catch (const WktParseError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected WktParseError for: " << wkt;
  return Kind::kTrailingGarbage;
}

TEST(WktParseTest, ParsesASquare) {
  const Polygon p =
      ParseWktPolygon("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.vertex(0), (Point{0.0, 0.0}));
  EXPECT_EQ(p.vertex(2), (Point{1.0, 1.0}));
  EXPECT_DOUBLE_EQ(p.Area(), 1.0);
}

TEST(WktParseTest, AcceptsFlexibleWhitespaceCaseAndScientificNotation) {
  const Polygon p = ParseWktPolygon(
      "  polygon((1e-1 -2.5E2,3 .5,  -4 2,1e-1 -2.5E2))  ");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.vertex(0), (Point{0.1, -250.0}));
  EXPECT_EQ(p.vertex(1), (Point{3.0, 0.5}));
}

TEST(WktParseTest, RoundTripsEveryVertexBitForBit) {
  // ToWkt -> ParseWktPolygon must reproduce exact coordinate bits: the
  // result cache keys on them, so a lossy round trip would silently turn
  // repeat client queries into misses (or worse, into false hits).
  const Polygon original{{{0.1, 0.2},
                          {std::nextafter(0.7, 1.0), -1.0 / 3.0},
                          {5e-324, 2.5},  // Smallest subnormal.
                          {-0.0, 1e308}}};
  const Polygon reparsed = ParseWktPolygon(ToWkt(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(std::signbit(reparsed.vertex(i).x),
              std::signbit(original.vertex(i).x));
    EXPECT_EQ(reparsed.vertex(i).x, original.vertex(i).x) << "vertex " << i;
    EXPECT_EQ(reparsed.vertex(i).y, original.vertex(i).y) << "vertex " << i;
  }
}

// --- The malformed corpus: one typed kind per failure mode. -------------

TEST(WktParseTest, RejectsNonPolygonGeometries) {
  EXPECT_EQ(ParseKind("POINT (1 2)"), Kind::kBadGeometryType);
  EXPECT_EQ(ParseKind("LINESTRING (0 0, 1 1)"), Kind::kBadGeometryType);
  EXPECT_EQ(ParseKind("garbage"), Kind::kBadGeometryType);
  EXPECT_EQ(ParseKind(""), Kind::kBadGeometryType);
  // A valid tag followed by the wrong bracket kind is a type error too.
  EXPECT_EQ(ParseKind("POLYGON [0 0, 1 0, 0 1, 0 0]"),
            Kind::kBadGeometryType);
}

TEST(WktParseTest, RejectsTruncatedInputsAtEveryStage) {
  EXPECT_EQ(ParseKind("POLYGON"), Kind::kTruncated);
  EXPECT_EQ(ParseKind("POLYGON ("), Kind::kTruncated);
  EXPECT_EQ(ParseKind("POLYGON (("), Kind::kTruncated);
  EXPECT_EQ(ParseKind("POLYGON ((0"), Kind::kTruncated);
  EXPECT_EQ(ParseKind("POLYGON ((0 0"), Kind::kTruncated);
  EXPECT_EQ(ParseKind("POLYGON ((0 0,"), Kind::kTruncated);
  EXPECT_EQ(ParseKind("POLYGON ((0 0, 1 0, 1 1, 0 0)"), Kind::kTruncated);
}

TEST(WktParseTest, RejectsMalformedAndNonFiniteCoordinates) {
  EXPECT_EQ(ParseKind("POLYGON ((a 0, 1 0, 1 1, a 0))"), Kind::kBadNumber);
  EXPECT_EQ(ParseKind("POLYGON ((0 0, 1 x, 1 1, 0 0))"), Kind::kBadNumber);
  EXPECT_EQ(ParseKind("POLYGON ((0 0 7, 1 0, 1 1, 0 0))"),
            Kind::kBadNumber);  // Z coordinates are not supported.
  EXPECT_EQ(ParseKind("POLYGON ((nan 0, 1 0, 1 1, nan 0))"),
            Kind::kNonFinite);
  EXPECT_EQ(ParseKind("POLYGON ((0 inf, 1 0, 1 1, 0 inf))"),
            Kind::kNonFinite);
  EXPECT_EQ(ParseKind("POLYGON ((1e999 0, 1 0, 1 1, 1e999 0))"),
            Kind::kNonFinite);  // Overflows to +inf.
}

TEST(WktParseTest, RejectsUnclosedAndUndersizedRings) {
  EXPECT_EQ(ParseKind("POLYGON ((0 0, 1 0, 1 1, 0 1))"),
            Kind::kUnclosedRing);
  // Closed but only 2 distinct vertices after dropping the repeat.
  EXPECT_EQ(ParseKind("POLYGON ((0 0, 1 0, 0 0))"), Kind::kTooFewVertices);
  EXPECT_EQ(ParseKind("POLYGON ((0 0))"), Kind::kUnclosedRing);
  EXPECT_EQ(ParseKind("POLYGON EMPTY"), Kind::kTooFewVertices);
}

TEST(WktParseTest, RejectsInnerRingsAndTrailingGarbage) {
  EXPECT_EQ(
      ParseKind("POLYGON ((0 0, 4 0, 4 4, 0 0), (1 1, 2 1, 1 2, 1 1))"),
      Kind::kInnerRings);
  EXPECT_EQ(ParseKind("POLYGON ((0 0, 1 0, 1 1, 0 0)) extra"),
            Kind::kTrailingGarbage);
  EXPECT_EQ(ParseKind("POLYGON ((0 0, 1 0, 1 1, 0 0)))"),
            Kind::kTrailingGarbage);
}

TEST(WktParseTest, VertexBoundIsEnforcedBeforeAllocation) {
  // An input claiming millions of vertices must fail at the bound, not
  // after materialising them. Build a ring of max+2 vertices against a
  // small bound and check the typed error (the parser appends at most
  // bound+1 entries by construction).
  const std::size_t bound = 8;
  std::string wkt = "POLYGON ((";
  for (int i = 0; i < 32; ++i) {
    wkt += std::to_string(i) + " 0, ";
  }
  wkt += "0 0))";
  EXPECT_EQ(ParseKind(wkt, bound), Kind::kTooManyVertices);
}

TEST(WktParseTest, ErrorsCarryTheByteOffset) {
  try {
    ParseWktPolygon("POLYGON ((0 0, 1 zzz, 1 1, 0 0))");
    FAIL() << "expected WktParseError";
  } catch (const WktParseError& e) {
    EXPECT_EQ(e.kind(), Kind::kBadNumber);
    EXPECT_EQ(e.offset(), 17u);  // The 'z' of the bad y token.
  }
}

}  // namespace
}  // namespace vaq
