#include "core/query_context.h"

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(QueryContextTest, VisitEpochMarksAreScopedToOneEpoch) {
  QueryContext ctx;
  ctx.BeginVisitEpoch(10);
  EXPECT_FALSE(ctx.Visited(3));
  ctx.MarkVisited(3);
  EXPECT_TRUE(ctx.Visited(3));
  ctx.BeginVisitEpoch(10);
  EXPECT_FALSE(ctx.Visited(3));  // New epoch invalidates old marks.
}

TEST(QueryContextTest, ResizingResetsMarks) {
  QueryContext ctx;
  ctx.BeginVisitEpoch(10);
  ctx.MarkVisited(5);
  ctx.BeginVisitEpoch(20);
  EXPECT_FALSE(ctx.Visited(5));
  ctx.BeginVisitEpoch(10);
  EXPECT_FALSE(ctx.Visited(5));
}

TEST(QueryContextTest, EpochCounterWrapDoesNotAliasStaleMarks) {
  // Regression for the epoch-wrap bug: after the uint32 epoch counter
  // overflows, entries marked in earlier epochs (including the cleared
  // value 0) must not read as visited in the new epoch.
  QueryContext ctx;
  ctx.SetEpochForTest(0xFFFFFFFEu);

  ctx.BeginVisitEpoch(8);  // epoch -> 0xFFFFFFFF
  ctx.MarkVisited(2);
  EXPECT_TRUE(ctx.Visited(2));

  ctx.BeginVisitEpoch(8);  // epoch wraps -> cleared, restarts at 1
  EXPECT_FALSE(ctx.Visited(2)) << "stale mark aliased across the wrap";
  EXPECT_FALSE(ctx.Visited(0)) << "cleared entries must read unvisited";
  ctx.MarkVisited(4);
  EXPECT_TRUE(ctx.Visited(4));

  ctx.BeginVisitEpoch(8);  // And the epoch after the wrap behaves normally.
  EXPECT_FALSE(ctx.Visited(4));
}

TEST(QueryContextTest, VoronoiQueryCorrectAcrossEpochWrap) {
  // End-to-end version: a query executed right at the wrap must still
  // return the exact result set (the seed bug made every point look
  // already-visited, yielding an empty result).
  Rng rng(99);
  PointDatabase db(GenerateUniformPoints(500, kUnit, &rng));
  const VoronoiAreaQuery vaq(&db);
  const BruteForceAreaQuery brute(&db);

  PolygonSpec spec;
  spec.query_size_fraction = 0.1;
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
  const std::vector<PointId> truth = brute.Run(area);

  QueryContext ctx;
  ctx.SetEpochForTest(0xFFFFFFFDu);
  for (int i = 0; i < 5; ++i) {  // Crosses 0xFFFFFFFF and the wrap to 1.
    EXPECT_EQ(vaq.Run(area, ctx), truth) << "query " << i << " at the wrap";
  }
}

TEST(QueryContextTest, ScratchBuffersComeBackCleared) {
  QueryContext ctx;
  ctx.ScratchQueue().push_back(7);
  ctx.ScratchCandidates().push_back(8);
  ctx.ScratchIndexStats().node_accesses = 9;
  EXPECT_TRUE(ctx.ScratchQueue().empty());
  EXPECT_TRUE(ctx.ScratchCandidates().empty());
  EXPECT_EQ(ctx.ScratchIndexStats().node_accesses, 0u);
}

TEST(QueryContextTest, PreparedMemoSurvivesDeathOfOriginalPolygon) {
  // Regression (use-after-free): `Prepared` memoizes on polygon value, so
  // an equal-valued polygon at a *different address* — whose original has
  // been destroyed, as happens when a QueryEngine task's polygon copy
  // dies between two identical submissions — gets the cached grid back.
  // The cached structure must be rebound to the caller's live polygon, or
  // the residual exact tests dereference the dead one (caught under the
  // ASan CI job).
  Rng rng(91);
  PolygonSpec spec;
  spec.query_size_fraction = 0.2;
  const Polygon original = GenerateQueryPolygon(spec, kUnit, &rng);

  QueryContext ctx;
  Rng prng(17);
  std::vector<bool> first_verdicts;
  {
    // Prepared over a temporary copy that dies at scope end.
    const Polygon doomed = original;
    const PreparedArea& prep = ctx.Prepared(doomed, 10000);
    for (int i = 0; i < 500; ++i) {
      first_verdicts.push_back(
          prep.Contains({prng.Uniform(0, 1), prng.Uniform(0, 1)}));
    }
  }
  // Memo hit with the original (equal value, different address): verdicts
  // must match both the first pass and the naive polygon tests.
  const Polygon alive = original;
  const PreparedArea& prep = ctx.Prepared(alive, 10000);
  Rng prng2(17);
  for (int i = 0; i < 500; ++i) {
    const Point p{prng2.Uniform(0, 1), prng2.Uniform(0, 1)};
    EXPECT_EQ(prep.Contains(p), first_verdicts[i]) << "point " << i;
    EXPECT_EQ(prep.Contains(p), alive.Contains(p)) << "point " << i;
  }
  EXPECT_EQ(&prep.polygon(), &alive);  // Rebound, not dangling.
}

}  // namespace
}  // namespace vaq
