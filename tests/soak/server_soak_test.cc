// Loopback differential soak of the TCP query service: one live server,
// 32 concurrent query clients, a churn mutator (INSERT/ERASE/COMPACT over
// the wire), and an in-process oracle.
//
// The plane is partitioned so the differential is exact *during* churn,
// not just at quiesce: clients query fixed polygons strictly inside
// region A (x < 0.5) while the mutator touches only region-B points
// (x > 0.5) — so every A-polygon answer is churn-invariant and must equal
// the oracle captured before the soak started, on every response, under
// any interleaving of mutations, compaction drains and cache hits.
//
// Zero-drop contract: every request gets a terminal response — including
// the ones that arrive during a COMPACT drain (they queue briefly on the
// drain lock) and the ones shed by admission control (a typed RETRY_LATER
// is a response; the client retries). Any transport failure or mismatch
// fails the test.
//
// This binary is also the TSan leg's workload (see ci.yml): 30+ threads
// hammering one engine pool, the COW snapshot path and the drain lock is
// exactly the interleaving surface TSan wants to see.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_point_database.h"
#include "geometry/wkt.h"
#include "server/client.h"
#include "server/query_server.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr int kClients = 32;
constexpr int kQueriesPerClient = 50;
constexpr int kMutatorSteps = 240;
constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};
// Clients query strictly inside A; the mutator inserts strictly inside B.
constexpr Box kRegionA = Box{{0.02, 0.02}, {0.46, 0.98}};

std::vector<PointId> LiveBruteForce(const DynamicPointDatabase& db,
                                    const Polygon& area) {
  std::vector<PointId> expected;
  db.snapshot()->ForEachLive([&](PointId id, const Point& p) {
    if (area.Contains(p)) expected.push_back(id);
  });
  std::sort(expected.begin(), expected.end());
  return expected;
}

/// One query with bounded RETRY_LATER backoff. Returns true on success,
/// false when the retry budget ran out; transport errors propagate.
bool QueryWithRetry(QueryClient& client, const WireQueryRequest& req,
                    std::vector<PointId>* ids) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    try {
      *ids = client.Query(req).ids;
      return true;
    } catch (const ServerError& e) {
      if (e.code() != WireErrorCode::kRetryLater) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return false;
}

TEST(ServerSoakTest, ConcurrentClientsChurnAndDrainsStayExact) {
  Rng rng(20260807);
  DynamicPointDatabase::Options db_options;
  db_options.auto_compact = false;  // Compaction only over the wire.
  DynamicPointDatabase db(GenerateUniformPoints(4000, kUnit, &rng),
                          db_options);

  QueryServer::Options options;
  options.engine_queue_capacity = 64;
  QueryServer server(&db, options);
  server.Start();

  // Fixed A-region polygons and their oracle answers, captured before any
  // churn. Region partitioning makes these invariant for the whole soak.
  PolygonSpec spec;
  spec.query_size_fraction = 0.15;
  std::vector<Polygon> areas;
  std::vector<std::string> wkts;
  std::vector<std::vector<PointId>> oracle;
  {
    Rng prng(11);
    QueryContext ctx;
    PlanHints uncached;
    uncached.use_cache = false;
    for (int i = 0; i < 6; ++i) {
      areas.push_back(GenerateQueryPolygon(spec, kRegionA, &prng));
      wkts.push_back(ToWkt(areas.back()));
      oracle.push_back(db.Query(areas.back(), ctx, uncached));
      ASSERT_LE(areas.back().Bounds().max.x, 0.5)
          << "client polygons must stay inside region A";
    }
  }

  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> transport_failures{0};
  std::atomic<std::uint64_t> retry_exhausted{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<int> compacts_done{0};
  std::atomic<bool> mutator_done{false};

  std::thread mutator([&] {
    try {
      QueryClient client(server.port());
      Rng mrng(77);
      std::vector<PointId> mine;
      for (int step = 0; step < kMutatorSteps; ++step) {
        const std::int64_t dice = mrng.UniformInt(0, 9);
        if (dice < 6) {
          // Region-B inserts only: x in (0.55, 0.95).
          const WireMutationResult r =
              client.Insert(mrng.Uniform(0.55, 0.95),
                            mrng.Uniform(0.02, 0.98));
          if (r.ok) mine.push_back(static_cast<PointId>(r.value));
        } else if (dice < 8 && !mine.empty()) {
          const std::size_t victim = static_cast<std::size_t>(mrng.UniformInt(
              0, static_cast<std::int64_t>(mine.size()) - 1));
          ASSERT_TRUE(client.Erase(mine[victim]).ok);
          mine.erase(mine.begin() + victim);
        } else {
          // A drain: in-flight queries finish, newcomers queue, rebuild,
          // resume. Clients must observe nothing but latency.
          ASSERT_TRUE(client.Compact().ok);
          compacts_done.fetch_add(1);
        }
      }
    } catch (const std::exception&) {
      transport_failures.fetch_add(1);
    }
    mutator_done.store(true);
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        QueryClient client(server.port());
        WireQueryRequest req;
        for (int i = 0; i < kQueriesPerClient; ++i) {
          const std::size_t which =
              static_cast<std::size_t>(t + i) % areas.size();
          req.wkt = wkts[which];
          std::vector<PointId> ids;
          if (!QueryWithRetry(client, req, &ids)) {
            retry_exhausted.fetch_add(1);
            continue;
          }
          answered.fetch_add(1);
          if (ids != oracle[which]) mismatches.fetch_add(1);
        }
      } catch (const std::exception&) {
        transport_failures.fetch_add(1);
      }
    });
  }

  mutator.join();
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "a client observed an answer differing from the oracle";
  EXPECT_EQ(transport_failures.load(), 0u)
      << "a request was dropped without a response";
  EXPECT_EQ(retry_exhausted.load(), 0u);
  EXPECT_EQ(answered.load(),
            static_cast<std::uint64_t>(kClients) * kQueriesPerClient)
      << "every query must be answered, drains included";
  EXPECT_GT(compacts_done.load(), 0)
      << "the schedule must have exercised at least one drain";

  // Server-side accounting agrees with the client-side counts.
  const QueryServer::Counters counters = server.counters();
  EXPECT_GE(counters.queries_ok, answered.load());
  EXPECT_EQ(counters.queries_rejected, 0u);
  EXPECT_EQ(counters.drains_completed,
            static_cast<std::uint64_t>(compacts_done.load()));
  EXPECT_EQ(counters.connections_total,
            static_cast<std::uint64_t>(kClients) + 1);

  // Quiesced differential over *both* regions — including the churned one
  // — against brute force on the final snapshot, through the network path.
  {
    QueryClient client(server.port());
    Rng qrng(5);
    PolygonSpec bspec;
    bspec.query_size_fraction = 0.2;
    for (int i = 0; i < 4; ++i) {
      const Polygon area = GenerateQueryPolygon(bspec, kUnit, &qrng);
      WireQueryRequest req;
      req.wkt = ToWkt(area);
      req.use_cache = false;
      std::vector<PointId> ids;
      ASSERT_TRUE(QueryWithRetry(client, req, &ids));
      EXPECT_EQ(ids, LiveBruteForce(db, area))
          << "post-churn networked answer diverged from brute force";
    }
    const WireServerStats stats = client.Stats();
    EXPECT_GT(stats.queries_completed, 0u);
    EXPECT_GT(stats.latency_p50_ms, 0.0);
  }

  server.Stop();
}

TEST(ServerSoakTest, StopMidLoadDrainsWithTypedResponses) {
  // Shutdown while clients are mid-flight: every in-flight or queued
  // query resolves — success, kCancelled, or kShuttingDown — and no
  // client hangs. "Drain, not drop" at process exit.
  Rng rng(99);
  DynamicPointDatabase db(GenerateUniformPoints(20000, kUnit, &rng));
  auto server = std::make_unique<QueryServer>(&db, QueryServer::Options{});
  server->Start();
  const std::uint16_t port = server->port();

  const std::string wkt = ToWkt(
      Polygon{{{0.05, 0.05}, {0.95, 0.05}, {0.95, 0.95}, {0.05, 0.95}}});
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> unexpected{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      try {
        QueryClient client(port);
        for (int i = 0; i < 1000; ++i) {
          try {
            client.Query(wkt);
            resolved.fetch_add(1);
          } catch (const ServerError& e) {
            resolved.fetch_add(1);
            if (e.code() != WireErrorCode::kCancelled &&
                e.code() != WireErrorCode::kShuttingDown &&
                e.code() != WireErrorCode::kRetryLater) {
              unexpected.fetch_add(1);
            }
          }
        }
      } catch (const std::exception&) {
        // Connection torn down after the drain finished delivering
        // responses: the expected end state for a client that keeps
        // sending after Stop().
      }
    });
  }

  // Let the load build, then stop the server under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();
  for (std::thread& c : clients) c.join();

  EXPECT_GT(resolved.load(), 0u) << "no query ever resolved before the stop";
  EXPECT_EQ(unexpected.load(), 0u)
      << "shutdown produced an error code outside the drain contract";
}

}  // namespace
}  // namespace vaq
