// Seeded fault-injection soak (DESIGN.md §12): randomized fault specs
// against small paged databases, differentially checked per query against
// an in-memory no-fault oracle. The contract under arbitrary injected
// faults is strict: every query either returns a result bit-identical to
// the oracle's or throws one of the typed failure-domain errors
// (`PageReadError`, `QueryAbortedError`) — never a silently wrong or
// partial answer, never a crash. The sharded partial-result mode gets the
// weaker-by-design check it documents: a sorted subset of the truth with
// `shards_failed`/`degraded` accounting for exactly the losses.
//
// Runs as its own ctest entry (`FaultSoakTest`, explicit TIMEOUT) rather
// than inside `vaq_tests`, because it is deliberately heavier than a unit
// test: kSeeds specs x 4 methods x several polygons each. Every decision
// derives from the seed, so a failure line's seed replays exactly.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "fault/fault.h"
#include "shard/sharded_area_query.h"
#include "shard/sharded_database.h"
#include "storage/page_format.h"
#include "storage/page_store.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};
constexpr int kSeeds = 32;
constexpr int kPolygonsPerSeed = 3;

/// One randomized spec per seed, drawn from grids that cover the
/// interesting corners: fault-free, rare faults the retry budget absorbs,
/// heavy faults that defeat it, and certain loss. Latency-class rates
/// (slow/torn) stay result-neutral by design; spike_ms is kept tiny so
/// the soak's wall-clock stays in budget.
FaultSpec DrawSpec(std::mt19937* gen) {
  const auto pick = [gen](std::initializer_list<double> choices) {
    std::vector<double> v(choices);
    return v[std::uniform_int_distribution<std::size_t>(0, v.size() - 1)(
        *gen)];
  };
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = (*gen)();
  spec.read_error_rate = pick({0.0, 0.02, 0.2, 1.0});
  spec.corrupt_rate = pick({0.0, 0.01, 0.1});
  spec.slow_page_rate = pick({0.0, 0.1});
  spec.spike_ms = 0.05;
  spec.torn_prefetch_rate = pick({0.0, 0.5});
  spec.fetch_spike_rate = pick({0.0, 0.2});
  spec.max_read_retries =
      std::uniform_int_distribution<int>(0, 3)(*gen);
  spec.backoff_initial_ms = 0.0;  // Retry counts, not wall-clock.
  return spec;
}

PointDatabase::Options FaultedPagedOptions(const FaultSpec& spec,
                                           bool uring) {
  PointDatabase::Options options;
  options.storage.backend =
      uring ? StorageBackend::kMmapUring : StorageBackend::kMmap;
  options.storage.cache_pages = 4;
  options.storage.page_size_bytes = 256;  // Many pages => many fault sites.
  options.storage.fault = spec;
  return options;
}

TEST(FaultSoakTest, EveryMethodIsExactOrTypedUnderRandomFaults) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 gen(0x5eedu + static_cast<unsigned>(seed) * 2654435761u);
    const FaultSpec spec = DrawSpec(&gen);
    Rng rng(1000 + seed);
    const std::vector<Point> points = GeneratePoints(
        1500, kUnit,
        seed % 2 == 0 ? PointDistribution::kUniform
                      : PointDistribution::kClustered,
        &rng);
    const PointDatabase oracle(points);
    const PointDatabase paged(points,
                              FaultedPagedOptions(spec, seed % 4 == 3));

    const TraditionalAreaQuery oracle_trad(&oracle), paged_trad(&paged);
    const VoronoiAreaQuery oracle_vaq(&oracle), paged_vaq(&paged);
    const GridSweepAreaQuery oracle_grid(&oracle), paged_grid(&paged);
    const BruteForceAreaQuery oracle_brute(&oracle), paged_brute(&paged);
    const struct {
      const AreaQuery* oracle_q;
      const AreaQuery* paged_q;
    } pairs[] = {{&oracle_vaq, &paged_vaq},
                 {&oracle_trad, &paged_trad},
                 {&oracle_grid, &paged_grid},
                 {&oracle_brute, &paged_brute}};

    QueryContext ctx;
    for (int q = 0; q < kPolygonsPerSeed; ++q) {
      PolygonSpec poly_spec;
      poly_spec.query_size_fraction =
          std::uniform_real_distribution<double>(0.01, 0.3)(gen);
      const Polygon area = GenerateQueryPolygon(poly_spec, kUnit, &rng);
      for (const auto& pair : pairs) {
        const std::vector<PointId> truth = pair.oracle_q->Run(area, ctx);
        try {
          const std::vector<PointId> got = pair.paged_q->Run(area, ctx);
          // Survived the faults: must be exact — retries and torn-batch
          // rollbacks are invisible in the result set, by contract.
          EXPECT_EQ(got, truth)
              << "seed=" << seed << " method=" << pair.paged_q->Name();
          EXPECT_EQ(ctx.stats.page_cache_hits + ctx.stats.page_cache_misses,
                    ctx.stats.pages_touched)
              << "seed=" << seed << " method=" << pair.paged_q->Name();
        } catch (const PageReadError& e) {
          // Typed storage failure: must carry a real page of this file.
          EXPECT_LT(e.page(), paged.page_store()->num_pages())
              << "seed=" << seed;
        }
        // Any other exception type escapes and fails the soak.
      }
    }
  }
}

TEST(FaultSoakTest, ShardedPartialModeReturnsFlaggedOracleSubsets) {
  constexpr std::size_t kShards = 4;
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 gen(0xabcdu + static_cast<unsigned>(seed) * 2654435761u);
    FaultSpec spec = DrawSpec(&gen);
    spec.read_error_rate = std::min(spec.read_error_rate, 0.2);
    Rng rng(4000 + seed);
    const std::vector<Point> points =
        GeneratePoints(1200, kUnit, PointDistribution::kUniform, &rng);
    const PointDatabase oracle(points);
    ShardedDatabase::Options options;
    options.num_shards = kShards;
    options.shard.base.storage.backend = StorageBackend::kMmap;
    options.shard.base.storage.cache_pages = 4;
    options.shard.base.storage.page_size_bytes = 256;
    options.shard.base.storage.fault = spec;
    const ShardedDatabase sharded(points, options);

    ShardPolicy policy;
    policy.allow_partial = true;
    policy.max_leg_retries =
        std::uniform_int_distribution<int>(0, 2)(gen);
    const DynamicMethod methods[] = {
        DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
        DynamicMethod::kGridSweep, DynamicMethod::kBruteForce};
    const DynamicMethod method =
        methods[static_cast<std::size_t>(seed) % 4];
    const ShardedAreaQuery query(&sharded, method, nullptr, policy);
    const BruteForceAreaQuery oracle_brute(&oracle);

    QueryContext ctx;
    for (int q = 0; q < kPolygonsPerSeed; ++q) {
      PolygonSpec poly_spec;
      poly_spec.query_size_fraction =
          std::uniform_real_distribution<double>(0.05, 0.3)(gen);
      const Polygon area = GenerateQueryPolygon(poly_spec, kUnit, &rng);
      std::vector<PointId> truth;
      for (const PointId id : oracle_brute.Run(area, ctx)) {
        truth.push_back(oracle.OriginalId(id));
      }
      std::sort(truth.begin(), truth.end());

      const std::vector<PointId> got = query.Run(area, ctx);
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end())) << "seed=" << seed;
      EXPECT_TRUE(
          std::includes(truth.begin(), truth.end(), got.begin(), got.end()))
          << "seed=" << seed;
      EXPECT_EQ(ctx.stats.shards_hit + ctx.stats.shards_pruned +
                    ctx.stats.shards_failed,
                kShards)
          << "seed=" << seed;
      EXPECT_EQ(ctx.stats.degraded == 1, ctx.stats.shards_failed > 0)
          << "seed=" << seed;
      if (ctx.stats.shards_failed == 0) {
        EXPECT_EQ(got, truth) << "seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace vaq
