// Tests of the experiment workload generators (points and query polygons).

#include <set>

#include <gtest/gtest.h>

#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(PointGeneratorTest, UniformCountAndRange) {
  Rng rng(1);
  const auto points = GenerateUniformPoints(5000, kUnit, &rng);
  EXPECT_EQ(points.size(), 5000u);
  for (const Point& p : points) {
    EXPECT_TRUE(kUnit.Contains(p));
  }
}

TEST(PointGeneratorTest, UniformIsRoughlyUniform) {
  Rng rng(2);
  const auto points = GenerateUniformPoints(40000, kUnit, &rng);
  // Quadrant counts within 5% of expectation.
  int counts[4] = {0, 0, 0, 0};
  for (const Point& p : points) {
    counts[(p.x >= 0.5 ? 1 : 0) + (p.y >= 0.5 ? 2 : 0)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(PointGeneratorTest, PointsAreDistinct) {
  Rng rng(3);
  for (const PointDistribution d :
       {PointDistribution::kUniform, PointDistribution::kClustered,
        PointDistribution::kGrid}) {
    const auto points = GeneratePoints(3000, kUnit, d, &rng);
    std::set<std::pair<double, double>> seen;
    for (const Point& p : points) seen.insert({p.x, p.y});
    EXPECT_EQ(seen.size(), points.size()) << PointDistributionName(d);
  }
}

TEST(PointGeneratorTest, DeterministicGivenSeed) {
  Rng rng1(42), rng2(42);
  const auto a = GenerateUniformPoints(100, kUnit, &rng1);
  const auto b = GenerateUniformPoints(100, kUnit, &rng2);
  EXPECT_EQ(a, b);
}

TEST(PointGeneratorTest, ClusteredIsDenserThanUniformSomewhere) {
  Rng rng(4);
  const auto points = GenerateClusteredPoints(20000, kUnit, 4, 0.02, &rng);
  EXPECT_EQ(points.size(), 20000u);
  // Max count over a 16x16 grid must far exceed the uniform expectation.
  int grid[256] = {0};
  for (const Point& p : points) {
    const int gx = std::min(15, static_cast<int>(p.x * 16));
    const int gy = std::min(15, static_cast<int>(p.y * 16));
    grid[gy * 16 + gx]++;
  }
  int max_count = 0;
  for (int c : grid) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 3 * (20000 / 256));
}

TEST(PointGeneratorTest, GridJitterStaysInDomain) {
  Rng rng(5);
  const auto points = GenerateGridPoints(5000, kUnit, 0.25, &rng);
  EXPECT_EQ(points.size(), 5000u);
  for (const Point& p : points) EXPECT_TRUE(kUnit.Contains(p));
}

TEST(PolygonGeneratorTest, MeetsQuerySizeExactly) {
  Rng rng(6);
  for (const double frac : {0.01, 0.02, 0.04, 0.08, 0.16, 0.32}) {
    PolygonSpec spec;
    spec.query_size_fraction = frac;
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    EXPECT_NEAR(area.Bounds().Area(), frac * kUnit.Area(), 1e-9)
        << "fraction " << frac;
  }
}

TEST(PolygonGeneratorTest, TenVerticesSimpleInsideDomain) {
  Rng rng(7);
  PolygonSpec spec;
  spec.query_size_fraction = 0.08;
  for (int i = 0; i < 100; ++i) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    EXPECT_EQ(area.size(), 10u);
    EXPECT_TRUE(area.IsSimple());
    EXPECT_TRUE(kUnit.Contains(area.Bounds()));
  }
}

TEST(PolygonGeneratorTest, AreaToMbrRatioMatchesPaperCalibration) {
  // DESIGN.md: radii U[0.35,1] targets area(A)/area(MBR) ~ 0.53, matching
  // the paper's result-size/candidate-size ratios. Allow a generous band.
  Rng rng(8);
  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  double ratio_sum = 0.0;
  const int reps = 300;
  for (int i = 0; i < reps; ++i) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    ratio_sum += area.Area() / area.Bounds().Area();
  }
  const double mean_ratio = ratio_sum / reps;
  EXPECT_GT(mean_ratio, 0.45);
  EXPECT_LT(mean_ratio, 0.62);
}

TEST(PolygonGeneratorTest, CustomVertexCount) {
  Rng rng(9);
  PolygonSpec spec;
  spec.vertices = 24;
  spec.query_size_fraction = 0.1;
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
  EXPECT_EQ(area.size(), 24u);
  EXPECT_TRUE(area.IsSimple());
}

TEST(PolygonGeneratorTest, MostDecagonsAreConcave) {
  // The paper argues irregular (usually concave) query areas are the
  // common case; our generator should produce them overwhelmingly.
  Rng rng(10);
  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  int concave = 0;
  const int reps = 100;
  for (int i = 0; i < reps; ++i) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    // A polygon is convex iff no reflex corner exists (CCW ring: all
    // cross products positive).
    bool is_convex = true;
    const double orientation = area.SignedArea() > 0 ? 1.0 : -1.0;
    for (std::size_t v = 0; v < area.size(); ++v) {
      const Point& a = area.vertex(v);
      const Point& b = area.vertex((v + 1) % area.size());
      const Point& c = area.vertex((v + 2) % area.size());
      if (orientation * (b - a).Cross(c - b) < 0) {
        is_convex = false;
        break;
      }
    }
    if (!is_convex) ++concave;
  }
  EXPECT_GT(concave, 80);
}

TEST(CombPolygonGeneratorTest, TeethCountControlsComplexity) {
  for (int teeth = 2; teeth <= 8; ++teeth) {
    const Polygon comb =
        GenerateCombPolygon(Box::FromExtents(0, 0, 1, 1), teeth);
    EXPECT_EQ(comb.size(), static_cast<std::size_t>(4 * teeth));
    EXPECT_TRUE(comb.IsSimple()) << teeth;
  }
}

TEST(RngTest, DeterministicAndRangeRespecting) {
  Rng a(1), b(1);
  for (int i = 0; i < 100; ++i) {
    const double va = a.Uniform(-2.0, 3.0);
    EXPECT_EQ(va, b.Uniform(-2.0, 3.0));
    EXPECT_GE(va, -2.0);
    EXPECT_LT(va, 3.0);
  }
  for (int i = 0; i < 100; ++i) {
    const auto v = a.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

}  // namespace
}  // namespace vaq
