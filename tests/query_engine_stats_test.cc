// EngineStats percentile correctness: the nearest-rank estimator behind
// latency_p50/p95/p99 fed with known distributions must land on the exact
// expected order statistics (previously only smoke-tested as "p50 <= p95
// <= p99"), plus the engine-level accounting around it.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "engine/query_engine.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

TEST(QueryEngineStatsTest, NearestRankPercentileExactOrderStatistics) {
  // 1..100, one sample per integer: the q-th percentile is exactly the
  // sample of rank ceil(q * 100).
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 1.00), 100.0);
  // Below one full rank the estimator clamps to the smallest sample.
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.0), 1.0);
}

TEST(QueryEngineStatsTest, NearestRankPercentileSmallAndSkewedSamples) {
  EXPECT_DOUBLE_EQ(NearestRankPercentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({7.5}, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({7.5}, 0.99), 7.5);
  // n=3: ranks are ceil(1.5)=2 and ceil(2.85)=3.
  EXPECT_DOUBLE_EQ(NearestRankPercentile({10.0, 20.0, 30.0}, 0.50), 20.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({10.0, 20.0, 30.0}, 0.95), 30.0);
  // A heavy-tailed distribution: 98 fast samples, 2 slow ones. p95 must
  // stay on the fast plateau, p99 must reach the first slow sample.
  std::vector<double> tail(98, 1.0);
  tail.push_back(500.0);
  tail.push_back(900.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(tail, 0.95), 1.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(tail, 0.99), 500.0);
  // Duplicated-value distribution: percentiles sit on real samples.
  std::vector<double> dup;
  for (int i = 0; i < 60; ++i) dup.push_back(2.0);
  for (int i = 0; i < 40; ++i) dup.push_back(4.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(dup, 0.50), 2.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(dup, 0.60), 2.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(dup, 0.61), 4.0);
}

TEST(QueryEngineStatsTest, EngineLatencyPercentilesAreCoherent) {
  // End-to-end: the engine's reported percentiles come from real latency
  // samples of completed queries — monotone across quantiles, positive,
  // and counted per registered method only.
  constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};
  Rng rng(77);
  const PointDatabase db(GenerateUniformPoints(2000, kUnit, &rng));
  const BruteForceAreaQuery brute(&db);
  QueryEngine engine({.num_threads = 2});
  const int method = engine.RegisterMethod(&brute);

  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  std::vector<Polygon> areas;
  for (int i = 0; i < 64; ++i) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }
  engine.RunBatch(areas, method);

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_completed, 64u);
  ASSERT_EQ(stats.methods.size(), 1u);
  EXPECT_EQ(stats.methods[0].queries, 64u);
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);

  // Ad-hoc SubmitWith executions (the sharded scatter legs) deliver
  // results but never pollute the client-query statistics.
  for (int i = 0; i < 8; ++i) {
    const QueryResult r = engine.SubmitWith(&brute, areas[i]).get();
    EXPECT_EQ(r.stats.results, r.ids.size());
  }
  const EngineStats after = engine.Stats();
  EXPECT_EQ(after.queries_completed, 64u);
  EXPECT_EQ(after.methods[0].queries, 64u);

  engine.ResetStats();
  const EngineStats reset = engine.Stats();
  EXPECT_EQ(reset.queries_completed, 0u);
  EXPECT_DOUBLE_EQ(reset.latency_p50_ms, 0.0);
}

}  // namespace
}  // namespace vaq
