#include "workload/experiment.h"

#include <sstream>

#include <gtest/gtest.h>

namespace vaq {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.data_size = 2000;
  config.query_size_fraction = 0.02;
  config.repetitions = 10;
  config.seed = 77;
  return config;
}

TEST(ExperimentTest, RunsAndReportsSaneAverages) {
  const ExperimentRow row = RunExperiment(SmallConfig());
  EXPECT_GT(row.result_size, 0.0);
  EXPECT_GE(row.traditional.candidates, row.result_size);
  EXPECT_GE(row.voronoi.candidates, row.result_size);
  EXPECT_GT(row.traditional.time_ms, 0.0);
  EXPECT_GT(row.voronoi.time_ms, 0.0);
  EXPECT_EQ(row.mismatches, 0);
  EXPECT_GT(row.build_rtree_ms, 0.0);
  EXPECT_GT(row.build_delaunay_ms, 0.0);
  // The expected MBR population is data_size * query_size: ~40.
  EXPECT_NEAR(row.traditional.candidates, 40.0, 20.0);
}

TEST(ExperimentTest, VerifyModeAgreesWithBruteForce) {
  ExperimentConfig config = SmallConfig();
  config.verify = true;
  const ExperimentRow row = RunExperiment(config);
  EXPECT_EQ(row.mismatches, 0);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  const ExperimentRow a = RunExperiment(SmallConfig());
  const ExperimentRow b = RunExperiment(SmallConfig());
  EXPECT_EQ(a.result_size, b.result_size);
  EXPECT_EQ(a.traditional.candidates, b.traditional.candidates);
  EXPECT_EQ(a.voronoi.candidates, b.voronoi.candidates);
}

TEST(ExperimentTest, VoronoiSavesCandidatesOnPaperWorkload) {
  ExperimentConfig config = SmallConfig();
  config.data_size = 20000;
  config.query_size_fraction = 0.04;
  const ExperimentRow row = RunExperiment(config);
  // Paper reports 35-45% candidate savings; allow a wide band.
  EXPECT_GT(row.CandidatesSavedFraction(), 0.20);
  EXPECT_LT(row.CandidatesSavedFraction(), 0.60);
}

TEST(ExperimentTest, SimulatedFetchRestoresPaperTimeShape) {
  ExperimentConfig config = SmallConfig();
  config.data_size = 20000;
  config.query_size_fraction = 0.08;
  config.repetitions = 5;
  // Large enough that the simulated IO dominates even under sanitizer
  // instrumentation (which inflates the compute side ~10x): the batched
  // fetch boundary charges waits coherently, so the charge no longer
  // grows with per-call clock overhead the way per-candidate waits did.
  config.simulated_fetch_ns = 20000.0;
  const ExperimentRow row = RunExperiment(config);
  // With per-candidate IO simulated, fewer candidates must mean less time.
  EXPECT_GT(row.TimeSavedFraction(), 0.0);
}

TEST(ExperimentTest, TablePrinterProducesRows) {
  const ExperimentRow row = RunExperiment(SmallConfig());
  std::ostringstream table;
  PrintPaperTable({row, row}, /*vary_query_size=*/false, table);
  EXPECT_NE(table.str().find("Data size"), std::string::npos);
  EXPECT_NE(table.str().find("2000"), std::string::npos);

  std::ostringstream figures;
  PrintFigureSeries({row}, /*vary_query_size=*/true, figures);
  EXPECT_NE(figures.str().find("redundant"), std::string::npos);
}

TEST(ExperimentTest, AutoBatchMatchesStaticsAndReportsProvenance) {
  ExperimentConfig config = SmallConfig();
  config.run_auto = true;
  const ExperimentRow row = RunExperiment(config);
  // The planned batch is verified per repetition against the traditional
  // results inside the runner; any divergence lands in row.mismatches.
  EXPECT_EQ(row.mismatches, 0);
  EXPECT_GT(row.auto_planned.time_ms, 0.0);
  EXPECT_NE(row.auto_planned.plan_method, 0u);
  EXPECT_NE(row.auto_planned.plan_reason, 0u);
  // Every planned repetition is exactly one hit or one miss; the
  // runner's query stream generates a distinct polygon per repetition,
  // so this batch is all misses (the hit path is bench_planner's and
  // PlannerCacheChurnTest's job — repeated identical polygons).
  EXPECT_NEAR(row.auto_planned.result_cache_hits +
                  row.auto_planned.result_cache_misses,
              1.0, 1e-9);
  EXPECT_NEAR(row.auto_planned.result_cache_misses, 1.0, 1e-9);

  // The JSON writer only emits the auto object for planned rows.
  std::ostringstream with;
  WriteRowsJson({row}, with);
  EXPECT_NE(with.str().find("\"auto\""), std::string::npos);
  EXPECT_NE(with.str().find("plan_reason"), std::string::npos);
  std::ostringstream without;
  WriteRowsJson({RunExperiment(SmallConfig())}, without);
  EXPECT_EQ(without.str().find("\"auto\""), std::string::npos);
}

TEST(ExperimentTest, ClusteredDistributionAlsoCorrect) {
  ExperimentConfig config = SmallConfig();
  config.distribution = PointDistribution::kClustered;
  config.verify = true;
  const ExperimentRow row = RunExperiment(config);
  EXPECT_EQ(row.mismatches, 0);
}

}  // namespace
}  // namespace vaq
