#include "engine/query_engine.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

std::vector<Polygon> RandomPolygons(int count, double size_fraction,
                                    std::uint64_t seed) {
  Rng rng(seed);
  PolygonSpec spec;
  spec.query_size_fraction = size_fraction;
  std::vector<Polygon> areas;
  areas.reserve(count);
  for (int i = 0; i < count; ++i) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }
  return areas;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() {
    Rng rng(4242);
    db_ = std::make_unique<PointDatabase>(
        GenerateUniformPoints(5000, kUnit, &rng));
  }
  std::unique_ptr<PointDatabase> db_;
};

TEST_F(QueryEngineTest, ConcurrentBatchesMatchBruteForceGroundTruth) {
  // The concurrency regression of ISSUE 1: N threads x M random polygons
  // through the engine, every result checked against the sequential
  // brute-force scan.
  const VoronoiAreaQuery voronoi(db_.get());
  const TraditionalAreaQuery traditional(db_.get());
  const GridSweepAreaQuery sweep(db_.get());
  const BruteForceAreaQuery brute(db_.get());

  QueryEngine engine({.num_threads = 4, .queue_capacity = 16});
  const int vaq_id = engine.RegisterMethod(&voronoi);
  const int trad_id = engine.RegisterMethod(&traditional);
  const int sweep_id = engine.RegisterMethod(&sweep);

  const std::vector<Polygon> areas = RandomPolygons(64, 0.03, 7);
  const std::vector<QueryResult> vaq_results = engine.RunBatch(areas, vaq_id);
  const std::vector<QueryResult> trad_results =
      engine.RunBatch(areas, trad_id);
  const std::vector<QueryResult> sweep_results =
      engine.RunBatch(areas, sweep_id);

  ASSERT_EQ(vaq_results.size(), areas.size());
  for (std::size_t i = 0; i < areas.size(); ++i) {
    const std::vector<PointId> truth = brute.Run(areas[i]);
    EXPECT_EQ(vaq_results[i].ids, truth) << "voronoi, polygon " << i;
    EXPECT_EQ(trad_results[i].ids, truth) << "traditional, polygon " << i;
    EXPECT_EQ(sweep_results[i].ids, truth) << "grid-sweep, polygon " << i;
  }
}

TEST_F(QueryEngineTest, BatchedResultsIdenticalToSequential) {
  // Determinism check: the 4-thread batch must return bit-identical result
  // sets, in input order, to a sequential single-context loop.
  const VoronoiAreaQuery voronoi(db_.get());
  const std::vector<Polygon> areas = RandomPolygons(48, 0.02, 13);

  QueryContext ctx;
  std::vector<std::vector<PointId>> sequential;
  sequential.reserve(areas.size());
  for (const Polygon& area : areas) sequential.push_back(voronoi.Run(area, ctx));

  QueryEngine engine({.num_threads = 4});
  engine.RegisterMethod(&voronoi);
  const std::vector<QueryResult> batched = engine.RunBatch(areas);

  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < areas.size(); ++i) {
    EXPECT_EQ(batched[i].ids, sequential[i]) << "polygon " << i;
  }
}

TEST_F(QueryEngineTest, SubmitResolvesFuturesWithStats) {
  const TraditionalAreaQuery traditional(db_.get());
  QueryEngine engine({.num_threads = 2});
  engine.RegisterMethod(&traditional);

  const std::vector<Polygon> areas = RandomPolygons(8, 0.05, 3);
  std::vector<std::future<QueryResult>> futures;
  for (const Polygon& area : areas) futures.push_back(engine.Submit(area));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    QueryResult r = futures[i].get();
    EXPECT_EQ(r.ids.size(), r.stats.results);
    EXPECT_GE(r.stats.candidates, r.stats.results);
    EXPECT_GT(r.stats.elapsed_ms, 0.0);
  }
}

TEST_F(QueryEngineTest, EngineStatsAggregatePerMethod) {
  const TraditionalAreaQuery traditional(db_.get());
  const VoronoiAreaQuery voronoi(db_.get());
  QueryEngine engine({.num_threads = 2});
  const int trad_id = engine.RegisterMethod(&traditional);
  const int vaq_id = engine.RegisterMethod(&voronoi);

  const std::vector<Polygon> areas = RandomPolygons(20, 0.02, 21);
  engine.RunBatch(areas, trad_id);
  engine.RunBatch(areas, vaq_id);

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_completed, 2 * areas.size());
  EXPECT_GT(stats.throughput_qps, 0.0);
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);

  ASSERT_EQ(stats.methods.size(), 2u);
  EXPECT_EQ(stats.methods[trad_id].name, "traditional");
  EXPECT_EQ(stats.methods[vaq_id].name, "voronoi");
  EXPECT_EQ(stats.methods[trad_id].queries, areas.size());
  EXPECT_EQ(stats.methods[vaq_id].queries, areas.size());
  EXPECT_GT(stats.methods[trad_id].totals.geometry_loads, 0u);
  EXPECT_GT(stats.methods[vaq_id].totals.neighbor_expansions, 0u);
  // The whole point of the paper: fewer candidates on the Voronoi path.
  EXPECT_LT(stats.methods[vaq_id].totals.candidates,
            stats.methods[trad_id].totals.candidates);

  engine.ResetStats();
  const EngineStats cleared = engine.Stats();
  EXPECT_EQ(cleared.queries_completed, 0u);
  EXPECT_TRUE(cleared.methods.empty());
}

TEST_F(QueryEngineTest, ManyProducerThreadsShareOneEngine) {
  // MPMC path: several client threads submit concurrently against a small
  // queue (so producers block on backpressure) while 4 workers drain.
  const VoronoiAreaQuery voronoi(db_.get());
  const BruteForceAreaQuery brute(db_.get());
  QueryEngine engine({.num_threads = 4, .queue_capacity = 4});
  engine.RegisterMethod(&voronoi);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      const std::vector<Polygon> areas =
          RandomPolygons(kPerProducer, 0.02, 100 + t);
      for (const Polygon& area : areas) {
        const QueryResult r = engine.Submit(area).get();
        if (r.ids != brute.Run(area)) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.Stats().queries_completed,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
}

TEST_F(QueryEngineTest, CellOverlapModeSafeUnderConcurrency) {
  // The cell-overlap ablation touches the lazily built Voronoi diagram;
  // its std::once_flag guard must make concurrent first use safe. Build
  // the query objects inside threads so the lazy init itself races.
  std::atomic<int> failures{0};
  const BruteForceAreaQuery brute(db_.get());
  const std::vector<Polygon> areas = RandomPolygons(8, 0.03, 31);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      VoronoiAreaQuery::Options options;
      options.expansion = VoronoiAreaQuery::ExpansionRule::kCellOverlap;
      const VoronoiAreaQuery query(db_.get(), options);
      QueryContext ctx;
      for (const Polygon& area : areas) {
        if (query.Run(area, ctx) != brute.Run(area)) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace vaq
