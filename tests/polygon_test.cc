#include "geometry/polygon.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vaq {
namespace {

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

// A concave "L" shape: unit square minus its top-right quadrant.
Polygon LShape() {
  return Polygon({{0, 0}, {1, 0}, {1, 0.5}, {0.5, 0.5}, {0.5, 1}, {0, 1}});
}

TEST(PolygonTest, AreaAndPerimeter) {
  const Polygon sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.Area(), 1.0);
  EXPECT_DOUBLE_EQ(sq.SignedArea(), 1.0);  // CCW.
  EXPECT_DOUBLE_EQ(sq.Perimeter(), 4.0);
  EXPECT_DOUBLE_EQ(sq.Reversed().SignedArea(), -1.0);
  EXPECT_DOUBLE_EQ(LShape().Area(), 0.75);
}

TEST(PolygonTest, BoundsAndCentroid) {
  const Polygon sq = UnitSquare();
  EXPECT_EQ(sq.Bounds(), Box::FromExtents(0, 0, 1, 1));
  EXPECT_EQ(sq.Centroid(), Point(0.5, 0.5));
  const Polygon tri({{0, 0}, {3, 0}, {0, 3}});
  EXPECT_NEAR(tri.Centroid().x, 1.0, 1e-12);
  EXPECT_NEAR(tri.Centroid().y, 1.0, 1e-12);
}

TEST(PolygonTest, ContainsInteriorExteriorBoundary) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains({0.5, 0.5}));
  EXPECT_FALSE(sq.Contains({1.5, 0.5}));
  EXPECT_FALSE(sq.Contains({0.5, -0.1}));
  // Boundary counts as contained.
  EXPECT_TRUE(sq.Contains({0.5, 0.0}));
  EXPECT_TRUE(sq.Contains({0.0, 0.0}));
  EXPECT_TRUE(sq.Contains({1.0, 1.0}));
  EXPECT_TRUE(sq.Contains({1.0, 0.25}));
}

TEST(PolygonTest, ContainsConcave) {
  const Polygon l = LShape();
  EXPECT_TRUE(l.Contains({0.25, 0.75}));   // In the vertical arm.
  EXPECT_TRUE(l.Contains({0.75, 0.25}));   // In the horizontal arm.
  EXPECT_FALSE(l.Contains({0.75, 0.75}));  // The notch (inside MBR!).
  EXPECT_TRUE(l.Contains({0.5, 0.75}));    // On the notch edge.
}

TEST(PolygonTest, ContainsIsWindingOrderAgnostic) {
  const Polygon l = LShape();
  const Polygon lr = l.Reversed();
  for (double x = 0.05; x < 1.0; x += 0.1) {
    for (double y = 0.05; y < 1.0; y += 0.1) {
      EXPECT_EQ(l.Contains({x, y}), lr.Contains({x, y}))
          << "at (" << x << ", " << y << ")";
    }
  }
}

TEST(PolygonTest, OnBoundary) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.OnBoundary({0.5, 0}));
  EXPECT_TRUE(sq.OnBoundary({1, 1}));
  EXPECT_FALSE(sq.OnBoundary({0.5, 0.5}));
  EXPECT_FALSE(sq.OnBoundary({2, 2}));
}

TEST(PolygonTest, InteriorPointIsInside) {
  EXPECT_TRUE(UnitSquare().Contains(UnitSquare().InteriorPoint()));
  EXPECT_TRUE(LShape().Contains(LShape().InteriorPoint()));
  // A crescent-ish concave polygon whose centroid is outside.
  const Polygon crescent({{0, 0},
                          {4, 0},
                          {4, 4},
                          {0, 4},
                          {0, 3.5},
                          {3.5, 3.5},
                          {3.5, 0.5},
                          {0, 0.5}});
  EXPECT_FALSE(crescent.Contains(crescent.Centroid()));
  EXPECT_TRUE(crescent.Contains(crescent.InteriorPoint()));
}

TEST(PolygonTest, SegmentIntersection) {
  const Polygon sq = UnitSquare();
  // Fully inside.
  EXPECT_TRUE(sq.Intersects(Segment{{0.2, 0.2}, {0.8, 0.8}}));
  // Crossing one edge.
  EXPECT_TRUE(sq.Intersects(Segment{{0.5, 0.5}, {2, 0.5}}));
  // Crossing through (both endpoints outside).
  EXPECT_TRUE(sq.Intersects(Segment{{-1, 0.5}, {2, 0.5}}));
  // Fully outside.
  EXPECT_FALSE(sq.Intersects(Segment{{2, 2}, {3, 3}}));
  // Outside but MBR-overlapping (diagonal clipping past the corner).
  EXPECT_FALSE(sq.Intersects(Segment{{1.2, 0.9}, {0.9, 1.2}}));
  // Touching a corner.
  EXPECT_TRUE(sq.Intersects(Segment{{1, 1}, {2, 2}}));
}

TEST(PolygonTest, SegmentIntersectionConcaveNotch) {
  const Polygon l = LShape();
  // A segment living entirely in the notch (inside the MBR, outside A).
  EXPECT_FALSE(l.Intersects(Segment{{0.7, 0.7}, {0.9, 0.9}}));
  // A segment spanning the notch from arm to arm.
  EXPECT_TRUE(l.Intersects(Segment{{0.25, 0.75}, {0.75, 0.25}}));
}

TEST(PolygonTest, BoundaryIntersects) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.BoundaryIntersects(Segment{{0.5, 0.5}, {2, 0.5}}));
  EXPECT_FALSE(sq.BoundaryIntersects(Segment{{0.2, 0.2}, {0.8, 0.8}}));
  EXPECT_FALSE(sq.BoundaryIntersects(Segment{{2, 2}, {3, 3}}));
}

TEST(PolygonTest, IsSimple) {
  EXPECT_TRUE(UnitSquare().IsSimple());
  EXPECT_TRUE(LShape().IsSimple());
  // Bowtie: self-crossing.
  const Polygon bowtie({{0, 0}, {1, 1}, {1, 0}, {0, 1}});
  EXPECT_FALSE(bowtie.IsSimple());
}

TEST(PolygonTest, FactoryFromBox) {
  const Polygon p = Polygon::FromBox(Box::FromExtents(1, 2, 3, 5));
  EXPECT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.Area(), 6.0);
  EXPECT_GT(p.SignedArea(), 0.0);  // CCW.
}

TEST(PolygonTest, FactoryRegularNGon) {
  const Polygon hex = Polygon::RegularNGon({0, 0}, 1.0, 6);
  EXPECT_EQ(hex.size(), 6u);
  // Area of unit-circumradius hexagon: 3*sqrt(3)/2.
  EXPECT_NEAR(hex.Area(), 3.0 * std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_TRUE(hex.Contains({0, 0}));
  EXPECT_TRUE(hex.IsSimple());
}

TEST(PolygonTest, EdgeAccessorWraps) {
  const Polygon sq = UnitSquare();
  EXPECT_EQ(sq.edge(3).a, Point(0, 1));
  EXPECT_EQ(sq.edge(3).b, Point(0, 0));  // Wraps to vertex 0.
}

}  // namespace
}  // namespace vaq
