// End-to-end tests of the TCP query service over loopback: a live
// `QueryServer` on an ephemeral port, real sockets, the `QueryClient`
// library on the other end. Every response is checked against the
// in-process oracle (`DynamicPointDatabase::Query` on the same data), so
// these are differential tests of the whole stack — WKT parse, planner
// routing, engine submission, id streaming — not just of the plumbing.
// The heavy concurrent version (32+ clients, churn, drains) is the
// separate `vaq_server_soak` binary.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_point_database.h"
#include "geometry/wkt.h"
#include "server/client.h"
#include "server/query_server.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

std::vector<Polygon> FixedAreas(std::uint64_t seed, int count, double size) {
  Rng rng(seed);
  PolygonSpec spec;
  spec.query_size_fraction = size;
  std::vector<Polygon> areas;
  for (int i = 0; i < count; ++i) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }
  return areas;
}

class ServerLoopbackTest : public ::testing::Test {
 protected:
  void StartServer(std::size_t points, QueryServer::Options options = {}) {
    Rng rng(20260807);
    db_ = std::make_unique<DynamicPointDatabase>(
        GenerateUniformPoints(points, kUnit, &rng));
    server_ = std::make_unique<QueryServer>(db_.get(), options);
    server_->Start();
  }

  std::vector<PointId> Oracle(const Polygon& area) {
    QueryContext ctx;
    PlanHints uncached;
    uncached.use_cache = false;
    return db_->Query(area, ctx, uncached);
  }

  std::unique_ptr<DynamicPointDatabase> db_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerLoopbackTest, PingAndStopAreClean) {
  StartServer(100);
  QueryClient client(server_->port());
  EXPECT_TRUE(client.Ping());
  EXPECT_TRUE(client.Ping());  // The connection survives across requests.
  server_->Stop();
  server_->Stop();  // Idempotent.
}

TEST_F(ServerLoopbackTest, QueryMatchesInProcessOracleExactly) {
  StartServer(3000);
  QueryClient client(server_->port());
  for (const Polygon& area : FixedAreas(7, 6, 0.2)) {
    const QueryClient::QueryOutcome outcome = client.Query(ToWkt(area));
    EXPECT_EQ(outcome.ids, Oracle(area))
        << "networked result diverged from the in-process planned query";
    EXPECT_EQ(outcome.stats.results, outcome.ids.size());
    EXPECT_NE(outcome.stats.plan_method, 0u)
        << "summary must record the planned method";
  }
  const QueryServer::Counters c = server_->counters();
  EXPECT_EQ(c.queries_ok, 6u);
  EXPECT_EQ(c.queries_rejected, 0u);
}

TEST_F(ServerLoopbackTest, LargeResultStreamsAcrossManyFrames) {
  // A polygon covering most of the square returns thousands of ids —
  // several kResultIds frames — and the client must reassemble them in
  // order and cross-check the total against the summary.
  StartServer(5000);
  QueryClient client(server_->port());
  const Polygon area{
      {{0.01, 0.01}, {0.99, 0.01}, {0.99, 0.99}, {0.01, 0.99}}};
  const QueryClient::QueryOutcome outcome = client.Query(ToWkt(area));
  EXPECT_GT(outcome.ids.size(), kIdsPerFrame)
      << "test polygon must exercise the multi-frame path";
  EXPECT_EQ(outcome.ids, Oracle(area));
}

TEST_F(ServerLoopbackTest, HintsTravelTheWire) {
  StartServer(2000);
  QueryClient client(server_->port());
  const Polygon area = FixedAreas(3, 1, 0.15)[0];

  // Forcing each method must execute that method (plan_reason carries
  // kForced, plan_method the method's bit) and agree on the answer.
  const std::vector<PointId> expected = Oracle(area);
  for (const DynamicMethod m :
       {DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
        DynamicMethod::kGridSweep, DynamicMethod::kBruteForce}) {
    WireQueryRequest req;
    req.wkt = ToWkt(area);
    req.force_method = m;
    req.use_cache = false;
    const QueryClient::QueryOutcome outcome = client.Query(req);
    EXPECT_EQ(outcome.ids, expected) << "forced " << MethodName(m);
    EXPECT_TRUE(outcome.stats.plan_reason & plan_reason::kForced)
        << "forced " << MethodName(m) << " must record kForced";
    EXPECT_EQ(outcome.stats.plan_method, MethodBit(m))
        << "forced " << MethodName(m) << " must execute exactly that method";
  }

  // Cache behaviour over the wire: with second-hit admission the first
  // two identical queries miss (decline, then store), the third hits.
  WireQueryRequest req;
  req.wkt = ToWkt(area);
  client.Query(req);
  client.Query(req);
  const QueryClient::QueryOutcome hit = client.Query(req);
  EXPECT_EQ(hit.stats.result_cache_hits, 1u)
      << "third identical cached query must be served from the cache";
  EXPECT_EQ(hit.ids, expected);

  // And use_cache=false bypasses it.
  req.use_cache = false;
  const QueryClient::QueryOutcome fresh = client.Query(req);
  EXPECT_EQ(fresh.stats.result_cache_hits, 0u);
  EXPECT_EQ(fresh.stats.result_cache_misses, 0u);
  EXPECT_EQ(fresh.ids, expected);
}

TEST_F(ServerLoopbackTest, MutationsChangeAnswers) {
  StartServer(500);
  QueryClient client(server_->port());
  const Polygon area{{{0.2, 0.2}, {0.8, 0.2}, {0.8, 0.8}, {0.2, 0.8}}};
  const std::vector<PointId> before = client.Query(ToWkt(area)).ids;

  const WireMutationResult ins = client.Insert(0.5, 0.5);
  ASSERT_TRUE(ins.ok);
  std::vector<PointId> after = client.Query(ToWkt(area)).ids;
  EXPECT_EQ(after.size(), before.size() + 1);
  EXPECT_TRUE(std::find(after.begin(), after.end(),
                        static_cast<PointId>(ins.value)) != after.end());
  // Duplicate insert is rejected, not an error.
  EXPECT_FALSE(client.Insert(0.5, 0.5).ok);

  ASSERT_TRUE(client.Erase(static_cast<PointId>(ins.value)).ok);
  EXPECT_FALSE(client.Erase(static_cast<PointId>(ins.value)).ok);
  EXPECT_EQ(client.Query(ToWkt(area)).ids, before);

  // COMPACT folds the delta and preserves ids and answers.
  ASSERT_TRUE(client.Insert(1.5, 1.5).ok);  // Outside the area.
  ASSERT_TRUE(client.Compact().ok);
  EXPECT_EQ(client.Query(ToWkt(area)).ids, before);
  EXPECT_EQ(server_->counters().drains_completed, 1u);
}

TEST_F(ServerLoopbackTest, BadWktGetsTypedErrorAndConnectionSurvives) {
  StartServer(200);
  QueryClient client(server_->port());
  const struct {
    const char* wkt;
  } kCases[] = {
      {"POINT (1 2)"},
      {"POLYGON (("},
      {"POLYGON ((0 0, 1 0, nope 1, 0 0))"},
      {"POLYGON ((0 0, 1 0, 0 1))"},  // Unclosed ring.
      {"POLYGON ((0 0, 1 0, 0 1, 0 0)) extra"},
  };
  for (const auto& c : kCases) {
    try {
      client.Query(c.wkt);
      FAIL() << "malformed WKT accepted: " << c.wkt;
    } catch (const ServerError& e) {
      EXPECT_EQ(e.code(), WireErrorCode::kBadWkt) << c.wkt;
    }
  }
  // The connection is still usable: payload errors never kill it.
  EXPECT_TRUE(client.Ping());
  EXPECT_EQ(server_->counters().queries_rejected, 5u);
}

TEST_F(ServerLoopbackTest, MalformedFramesGetBadRequest) {
  StartServer(200);

  {
    // Well-formed header, hostile payload: typed kBadRequest, connection
    // stays up.
    QueryClient client(server_->port());
    std::vector<std::uint8_t> frame;
    AppendFrame(frame, Opcode::kErase, std::vector<std::uint8_t>(3));
    const std::vector<std::uint8_t> response = client.RoundTripRaw(frame);
    const FrameHeader fh =
        DecodeFrameHeader({response.data(), kFrameHeaderBytes});
    ASSERT_EQ(fh.opcode, Opcode::kError);
    const WireError e = DecodeErrorPayload(
        {response.data() + kFrameHeaderBytes, fh.payload_len});
    EXPECT_EQ(e.code, WireErrorCode::kBadRequest);
    EXPECT_TRUE(client.Ping());
  }
  {
    // Malformed header (response opcode in a request): one kBadRequest,
    // then the server closes — framing is lost.
    QueryClient client(server_->port());
    std::vector<std::uint8_t> frame;
    AppendFrame(frame, Opcode::kError, {});
    const std::vector<std::uint8_t> response = client.RoundTripRaw(frame);
    const FrameHeader fh =
        DecodeFrameHeader({response.data(), kFrameHeaderBytes});
    EXPECT_EQ(fh.opcode, Opcode::kError);
    EXPECT_THROW(client.Ping(), std::runtime_error);
  }
  {
    // Bad magic: the peer is not speaking VQRY; the server closes
    // without answering.
    QueryClient client(server_->port());
    const std::uint8_t junk[16] = {'G', 'E', 'T', ' ', '/', ' ', 'H', 'T',
                                   'T', 'P', '/', '1', '.', '1', '\r', '\n'};
    EXPECT_THROW(client.RoundTripRaw(junk), std::runtime_error);
  }
}

TEST_F(ServerLoopbackTest, OversizedFrameIsRejectedBeforeAllocation) {
  StartServer(200);
  QueryClient client(server_->port());
  // Hand-build a header claiming a 4 GiB payload; the server must answer
  // kBadRequest off the fixed 12 bytes without ever allocating it.
  std::uint8_t header[kFrameHeaderBytes] = {'V', 'Q', 'R', 'Y',
                                            kProtocolVersion,
                                            static_cast<std::uint8_t>(
                                                Opcode::kQuery),
                                            0, 0, 0xFF, 0xFF, 0xFF, 0xFF};
  const std::vector<std::uint8_t> response = client.RoundTripRaw(header);
  const FrameHeader fh =
      DecodeFrameHeader({response.data(), kFrameHeaderBytes});
  ASSERT_EQ(fh.opcode, Opcode::kError);
  EXPECT_EQ(DecodeErrorPayload(
                {response.data() + kFrameHeaderBytes, fh.payload_len})
                .code,
            WireErrorCode::kBadRequest);
}

TEST_F(ServerLoopbackTest, TinyDeadlineAbortsTyped) {
  StartServer(3000);
  QueryClient client(server_->port());
  WireQueryRequest req;
  req.wkt = ToWkt(FixedAreas(5, 1, 0.3)[0]);
  req.deadline_ms = 1e-4;  // Expired by the time the worker dequeues it.
  try {
    client.Query(req);
    FAIL() << "a 100ns deadline must abort";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kDeadline);
  }
  EXPECT_EQ(server_->counters().queries_aborted, 1u);
  // The next query (no deadline) is unaffected.
  req.deadline_ms = 0.0;
  EXPECT_EQ(client.Query(req).ids, Oracle(FixedAreas(5, 1, 0.3)[0]));
}

TEST_F(ServerLoopbackTest, OverloadShedsWithRetryLater) {
  // One worker, a one-slot queue, and slow-ish queries from background
  // connections: a foreground burst must observe at least one typed
  // kRetryLater — admission control as backpressure, never a hang or a
  // silent drop. Each shed response is itself the retry protocol: the
  // test retries and must eventually succeed.
  QueryServer::Options options;
  options.engine_threads = 1;
  options.engine_queue_capacity = 1;
  StartServer(20000, options);
  const std::string wkt =
      ToWkt(Polygon{{{0.02, 0.02}, {0.98, 0.02}, {0.98, 0.98}, {0.02, 0.98}}});

  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int t = 0; t < 3; ++t) {
    load.emplace_back([&] {
      QueryClient c(server_->port());
      while (!stop.load()) {
        try {
          c.Query(wkt);
        } catch (const ServerError& e) {
          ASSERT_EQ(e.code(), WireErrorCode::kRetryLater);
        }
      }
    });
  }

  QueryClient client(server_->port());
  bool shed = false;
  bool succeeded = false;
  for (int attempt = 0; attempt < 400 && !(shed && succeeded); ++attempt) {
    try {
      client.Query(wkt);
      succeeded = true;
    } catch (const ServerError& e) {
      ASSERT_EQ(e.code(), WireErrorCode::kRetryLater)
          << "overload must surface as kRetryLater, nothing else";
      shed = true;
    }
  }
  stop.store(true);
  for (std::thread& t : load) t.join();
  EXPECT_TRUE(shed) << "the burst never hit admission control";
  EXPECT_TRUE(succeeded) << "retrying after a shed must eventually succeed";
  EXPECT_GT(server_->counters().queries_shed, 0u);
}

TEST_F(ServerLoopbackTest, StatsOpcodeReportsEngineAndServerCounters) {
  StartServer(1000);
  QueryClient client(server_->port());
  const std::string wkt = ToWkt(FixedAreas(9, 1, 0.2)[0]);
  for (int i = 0; i < 5; ++i) client.Query(wkt);

  const WireServerStats s = client.Stats();
  EXPECT_EQ(s.queries_ok, 5u);
  EXPECT_EQ(s.queries_completed, 5u) << "engine window counts client queries";
  EXPECT_GT(s.latency_p50_ms, 0.0);
  EXPECT_GE(s.latency_p99_ms, s.latency_p50_ms);
  EXPECT_EQ(s.connections_active, 1u);
  EXPECT_EQ(s.client_requests, 6u);  // 5 queries + this STATS.
  EXPECT_EQ(s.client_errors, 0u);

  // A second connection sees shared server counters but its own slice.
  QueryClient other(server_->port());
  const WireServerStats s2 = other.Stats();
  EXPECT_EQ(s2.queries_ok, 5u);
  EXPECT_EQ(s2.connections_total, 2u);
  EXPECT_EQ(s2.client_requests, 1u);
}

TEST_F(ServerLoopbackTest, StopWithIdleConnectionsDoesNotHang) {
  StartServer(200);
  QueryClient a(server_->port());
  QueryClient b(server_->port());
  EXPECT_TRUE(a.Ping());
  server_->Stop();  // Joins both connection threads blocked in read().
  EXPECT_THROW(a.Ping(), std::runtime_error);
}

}  // namespace
}  // namespace vaq
