// Regression tests for ROADMAP 4c: engine traffic must feed the planner.
// `QueryEngine::Submit`/`RunBatch` against a registered
// `DynamicPointDatabase::PlannedQuery()` routes through `PlannedAreaQuery`
// — planning each query, updating the EWMAs, and using the result cache —
// instead of bypassing the planner the way registered fixed-method
// objects do. Before the fix, batch/server traffic taught the planner
// nothing: `observations()` stayed 0 and every plan stayed on the seed
// model forever.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_point_database.h"
#include "engine/query_engine.h"
#include "planner/planned_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

std::vector<Polygon> FixedAreas(std::uint64_t seed, int count, double size) {
  Rng rng(seed);
  PolygonSpec spec;
  spec.query_size_fraction = size;
  std::vector<Polygon> areas;
  for (int i = 0; i < count; ++i) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }
  return areas;
}

TEST(EnginePlannerLearningTest, RunBatchFeedsThePlannerEwmas) {
  Rng rng(2026);
  DynamicPointDatabase db(GenerateUniformPoints(5000, kUnit, &rng));
  QueryEngine engine({.num_threads = 2});
  const int planned = engine.RegisterMethod(db.PlannedQuery());

  const std::vector<Polygon> areas = FixedAreas(13, 16, 0.1);
  ASSERT_EQ(db.PlannedQuery()->planner().observations(), 0u);

  // Warm batch: every query is a cache miss (distinct polygons, and
  // second-hit admission declines first-seen hashes), so every query
  // executes and must observe — 16 engine queries, 16 observations.
  const std::vector<QueryResult> first = engine.RunBatch(areas, planned);
  EXPECT_EQ(db.PlannedQuery()->planner().observations(), areas.size())
      << "engine batch traffic bypassed the planner (ROADMAP 4c)";

  // Differential: the engine-planned answers equal the in-process path.
  // (These uncached runs execute too, so they observe as well: the
  // planner counter below accounts for them.)
  QueryContext ctx;
  PlanHints uncached;
  uncached.use_cache = false;
  for (std::size_t i = 0; i < areas.size(); ++i) {
    EXPECT_EQ(first[i].ids, db.Query(areas[i], ctx, uncached));
    EXPECT_NE(first[i].stats.plan_method, 0u)
        << "a planned engine query must record its method";
  }
  ASSERT_EQ(db.PlannedQuery()->planner().observations(), 2 * areas.size());

  // Second pass over the same polygons: still misses (the cache admits
  // each hash on this second offer), still executions, and by now the
  // visited (method, bucket) slots have data — learned corrections must
  // show up in plan_reason. The engine's per-method totals OR the bits,
  // so one aggregate check covers the batch.
  const std::vector<QueryResult> second = engine.RunBatch(areas, planned);
  EXPECT_EQ(db.PlannedQuery()->planner().observations(), 3 * areas.size());
  std::uint64_t reason_union = 0;
  for (const QueryResult& r : second) reason_union |= r.stats.plan_reason;
  EXPECT_TRUE(reason_union & plan_reason::kLearnedModel)
      << "after a warm batch the planner must plan from learned EWMAs";
  const EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.methods.size(), 1u);
  EXPECT_TRUE(stats.methods[0].totals.plan_reason & plan_reason::kLearnedModel)
      << "engine per-method totals must carry the learned-model bit";

  // Third pass: the snapshot never changed, every hash is now resident —
  // served from the cache without executing (observations stay put).
  const std::vector<QueryResult> third = engine.RunBatch(areas, planned);
  EXPECT_EQ(db.PlannedQuery()->planner().observations(), 3 * areas.size())
      << "cache hits must not observe (nothing ran)";
  for (std::size_t i = 0; i < areas.size(); ++i) {
    EXPECT_EQ(third[i].stats.result_cache_hits, 1u);
    EXPECT_EQ(third[i].ids, first[i].ids);
  }
}

TEST(EnginePlannerLearningTest, SubmitHintsReachThePlan) {
  Rng rng(7);
  DynamicPointDatabase db(GenerateUniformPoints(3000, kUnit, &rng));
  QueryEngine engine({.num_threads = 1});
  const int planned = engine.RegisterMethod(db.PlannedQuery());
  const Polygon area = FixedAreas(3, 1, 0.15)[0];

  // A forced method travels through SubmitOptions::hints onto the worker
  // context: the plan records kForced and executes exactly that method.
  SubmitOptions opts;
  opts.hints.force_method = DynamicMethod::kGridSweep;
  opts.hints.use_cache = false;
  QueryResult forced = engine.Submit(area, planned, opts).get();
  EXPECT_TRUE(forced.stats.plan_reason & plan_reason::kForced);
  EXPECT_EQ(forced.stats.plan_method, MethodBit(DynamicMethod::kGridSweep));
  EXPECT_EQ(forced.stats.result_cache_hits + forced.stats.result_cache_misses,
            0u)
      << "use_cache=false must bypass the cache entirely";

  // The forced execution observed its slot; the next forced plan for the
  // same bucket must be learned (kForced considers only that slot, so
  // this is deterministic, not greedy-exploration luck).
  QueryResult again = engine.Submit(area, planned, opts).get();
  EXPECT_TRUE(again.stats.plan_reason & plan_reason::kLearnedModel)
      << "forced slot was observed once; the re-plan must be learned";
  EXPECT_EQ(again.ids, forced.ids);

  // Hints are per-submission, not sticky: a hint-less Submit plans
  // automatically (no kForced) and uses the cache.
  QueryResult plain = engine.Submit(area, planned).get();
  EXPECT_FALSE(plain.stats.plan_reason & plan_reason::kForced);
  EXPECT_EQ(plain.stats.result_cache_misses, 1u);
  EXPECT_EQ(plain.ids, forced.ids);
}

}  // namespace
}  // namespace vaq
