#include "planner/result_cache.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/polygon.h"

namespace vaq {
namespace {

std::shared_ptr<const std::vector<PointId>> Ids(
    std::initializer_list<PointId> ids) {
  return std::make_shared<const std::vector<PointId>>(ids);
}

Polygon Square(double x0, double y0, double side) {
  return Polygon{
      {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side}, {x0, y0 + side}}};
}

/// Stores an entry past second-hit admission: the first offer of a hash
/// is declined by design, the second is admitted.
void Admit(ResultCache& cache, const ResultCache::Key& key,
           std::shared_ptr<const std::vector<PointId>> ids) {
  cache.Insert(key, ids);
  cache.Insert(key, std::move(ids));
}

TEST(HashPolygonBitsTest, StableAndSensitiveToEveryBit) {
  const Polygon a = Square(0.1, 0.2, 0.3);
  EXPECT_EQ(HashPolygonBits(a), HashPolygonBits(Square(0.1, 0.2, 0.3)));

  // A one-ulp nudge of a single coordinate must change the hash: the
  // cache may only hit when a fresh run would be bit-identical, and
  // degenerate-edge classification can flip on the last bit.
  Polygon nudged = a;
  std::vector<Point> vertices(nudged.vertices().begin(),
                              nudged.vertices().end());
  vertices[2].x = std::nextafter(vertices[2].x, 2.0);
  nudged = Polygon{vertices};
  EXPECT_NE(HashPolygonBits(a), HashPolygonBits(nudged));

  // Same vertex set, rotated start: geometrically identical ring, but
  // intentionally a different key (edge order affects tie-breaking).
  const Polygon rotated{
      {{0.4, 0.2}, {0.4, 0.5}, {0.1, 0.5}, {0.1, 0.2}}};
  EXPECT_NE(HashPolygonBits(a), HashPolygonBits(rotated));
}

TEST(HashPolygonBitsTest, VertexCountFeedsTheHash) {
  // A degenerate extra collinear vertex keeps the shape but must miss.
  const Polygon tri{{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}};
  const Polygon tri4{
      {{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}, {0.0, 1.0}}};
  EXPECT_NE(HashPolygonBits(tri), HashPolygonBits(tri4));
}

TEST(ResultCacheTest, FirstOfferIsDeclinedSecondIsAdmitted) {
  // Second-hit admission: a never-seen polygon hash is recorded and its
  // ids dropped — a scan of one-shot polygons must not occupy (or evict)
  // cache slots. The second offer of the same hash is stored.
  ResultCache cache(4);
  const ResultCache::Key key{7, 42};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(key, Ids({1, 2, 3}));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.declined(), 1u);
  EXPECT_EQ(cache.Lookup(key), nullptr)
      << "a first-seen polygon must not be cached";
  cache.Insert(key, Ids({1, 2, 3}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.admitted(), 1u);
  const auto found = cache.Lookup(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, (std::vector<PointId>{1, 2, 3}));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ResultCacheTest, SeenHashesSpanVersions) {
  // The admission memory is keyed on the polygon hash alone: a polygon
  // that repeats across mutations re-misses (new version) but is admitted
  // on that version's *first* execution — it already proved it repeats.
  ResultCache cache(4);
  Admit(cache, {1, 99}, Ids({10}));
  ASSERT_NE(cache.Lookup({1, 99}), nullptr);
  cache.Insert({2, 99}, Ids({10, 11}));  // New version, known hash.
  const auto v2 = cache.Lookup({2, 99});
  ASSERT_NE(v2, nullptr) << "a known hash must be admitted on first offer "
                            "under a new version";
  EXPECT_EQ(v2->size(), 2u);
}

TEST(ResultCacheTest, VersionIsPartOfTheKey) {
  // The whole invalidation story: a bumped snapshot version misses even
  // for the same polygon hash, and the old entry keeps serving readers
  // still pinned on the old version.
  ResultCache cache(4);
  Admit(cache, {1, 99}, Ids({10}));
  EXPECT_EQ(cache.Lookup({2, 99}), nullptr);
  ASSERT_NE(cache.Lookup({1, 99}), nullptr);
  Admit(cache, {2, 99}, Ids({10, 11}));
  EXPECT_EQ(cache.Lookup({1, 99})->size(), 1u);
  EXPECT_EQ(cache.Lookup({2, 99})->size(), 2u);
}

TEST(ResultCacheTest, LruEvictsTheColdestEntry) {
  ResultCache cache(2);
  Admit(cache, {1, 1}, Ids({1}));
  Admit(cache, {1, 2}, Ids({2}));
  // Touch (1,1) so (1,2) is now least recently used.
  ASSERT_NE(cache.Lookup({1, 1}), nullptr);
  Admit(cache, {1, 3}, Ids({3}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup({1, 2}), nullptr);
  EXPECT_NE(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({1, 3}), nullptr);
}

TEST(ResultCacheTest, OneShotScanDoesNotEvictRepeaters) {
  // The eviction-pressure case the admission policy exists for: a hot
  // entry that proved it repeats, then a scan of `capacity * 4` distinct
  // one-shot polygons. Pre-admission-policy, the scan would sweep the hot
  // entry out of the 2-slot LRU; with second-hit admission every one-shot
  // offer is declined, so the hot entry survives untouched.
  ResultCache cache(2);
  Admit(cache, {1, 7000}, Ids({1, 2, 3}));
  ASSERT_NE(cache.Lookup({1, 7000}), nullptr);

  for (std::uint64_t i = 0; i < 8; ++i) {
    const ResultCache::Key one_shot{1, 100 + i};
    EXPECT_EQ(cache.Lookup(one_shot), nullptr);
    cache.Insert(one_shot, Ids({static_cast<PointId>(i)}));
  }
  EXPECT_EQ(cache.size(), 1u) << "one-shot offers must not occupy slots";
  ASSERT_NE(cache.Lookup({1, 7000}), nullptr)
      << "the proven repeater must survive the scan";
  EXPECT_EQ(cache.declined(), 8u + 1u);  // 8 one-shots + the hot first offer.
}

TEST(ResultCacheTest, SeenSetIsBoundedUnderUnboundedScan) {
  // The admission memory itself is bounded (8x capacity): an unbounded
  // stream of distinct polygons churns it without growing it, and an
  // entry evicted from the seen set loses its admission credit — its
  // next offer is a (declined) first offer again.
  ResultCache cache(2);  // seen capacity = 16.
  cache.Insert({1, 5555}, Ids({9}));  // Hash 5555 recorded.
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.Insert({1, 10000 + i}, Ids({static_cast<PointId>(i)}));
  }
  // 5555's credit was swept out by 64 distinct hashes through a 16-slot
  // set; this offer is declined (recorded again), not admitted.
  cache.Insert({1, 5555}, Ids({9}));
  EXPECT_EQ(cache.Lookup({1, 5555}), nullptr);
  EXPECT_EQ(cache.admitted(), 0u);
  // And the very next offer is the second hit: admitted.
  cache.Insert({1, 5555}, Ids({9}));
  EXPECT_NE(cache.Lookup({1, 5555}), nullptr);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  Admit(cache, {1, 1}, Ids({1}));
  cache.Insert({1, 1}, Ids({1, 2}));  // Resident key: refresh, not dup.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup({1, 1})->size(), 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesEverything) {
  ResultCache cache(0);
  cache.Insert({1, 1}, Ids({1}));
  cache.Insert({1, 1}, Ids({1}));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
}

TEST(ResultCacheTest, HitHandsBackSharedOwnership) {
  // An evicted entry's ids survive while a reader still holds them.
  ResultCache cache(1);
  Admit(cache, {1, 1}, Ids({5, 6}));
  const auto held = cache.Lookup({1, 1});
  Admit(cache, {1, 2}, Ids({7}));
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, (std::vector<PointId>{5, 6}));
}

}  // namespace
}  // namespace vaq
