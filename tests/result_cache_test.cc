#include "planner/result_cache.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/polygon.h"

namespace vaq {
namespace {

std::shared_ptr<const std::vector<PointId>> Ids(
    std::initializer_list<PointId> ids) {
  return std::make_shared<const std::vector<PointId>>(ids);
}

Polygon Square(double x0, double y0, double side) {
  return Polygon{
      {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side}, {x0, y0 + side}}};
}

TEST(HashPolygonBitsTest, StableAndSensitiveToEveryBit) {
  const Polygon a = Square(0.1, 0.2, 0.3);
  EXPECT_EQ(HashPolygonBits(a), HashPolygonBits(Square(0.1, 0.2, 0.3)));

  // A one-ulp nudge of a single coordinate must change the hash: the
  // cache may only hit when a fresh run would be bit-identical, and
  // degenerate-edge classification can flip on the last bit.
  Polygon nudged = a;
  std::vector<Point> vertices(nudged.vertices().begin(),
                              nudged.vertices().end());
  vertices[2].x = std::nextafter(vertices[2].x, 2.0);
  nudged = Polygon{vertices};
  EXPECT_NE(HashPolygonBits(a), HashPolygonBits(nudged));

  // Same vertex set, rotated start: geometrically identical ring, but
  // intentionally a different key (edge order affects tie-breaking).
  const Polygon rotated{
      {{0.4, 0.2}, {0.4, 0.5}, {0.1, 0.5}, {0.1, 0.2}}};
  EXPECT_NE(HashPolygonBits(a), HashPolygonBits(rotated));
}

TEST(HashPolygonBitsTest, VertexCountFeedsTheHash) {
  // A degenerate extra collinear vertex keeps the shape but must miss.
  const Polygon tri{{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}};
  const Polygon tri4{
      {{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}, {0.0, 1.0}}};
  EXPECT_NE(HashPolygonBits(tri), HashPolygonBits(tri4));
}

TEST(ResultCacheTest, MissThenHitRoundTrip) {
  ResultCache cache(4);
  const ResultCache::Key key{7, 42};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(key, Ids({1, 2, 3}));
  const auto found = cache.Lookup(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, (std::vector<PointId>{1, 2, 3}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, VersionIsPartOfTheKey) {
  // The whole invalidation story: a bumped snapshot version misses even
  // for the same polygon hash, and the old entry keeps serving readers
  // still pinned on the old version.
  ResultCache cache(4);
  cache.Insert({1, 99}, Ids({10}));
  EXPECT_EQ(cache.Lookup({2, 99}), nullptr);
  ASSERT_NE(cache.Lookup({1, 99}), nullptr);
  cache.Insert({2, 99}, Ids({10, 11}));
  EXPECT_EQ(cache.Lookup({1, 99})->size(), 1u);
  EXPECT_EQ(cache.Lookup({2, 99})->size(), 2u);
}

TEST(ResultCacheTest, LruEvictsTheColdestEntry) {
  ResultCache cache(2);
  cache.Insert({1, 1}, Ids({1}));
  cache.Insert({1, 2}, Ids({2}));
  // Touch (1,1) so (1,2) is now least recently used.
  ASSERT_NE(cache.Lookup({1, 1}), nullptr);
  cache.Insert({1, 3}, Ids({3}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup({1, 2}), nullptr);
  EXPECT_NE(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({1, 3}), nullptr);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  cache.Insert({1, 1}, Ids({1}));
  cache.Insert({1, 1}, Ids({1, 2}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup({1, 1})->size(), 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesEverything) {
  ResultCache cache(0);
  cache.Insert({1, 1}, Ids({1}));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
}

TEST(ResultCacheTest, HitHandsBackSharedOwnership) {
  // An evicted entry's ids survive while a reader still holds them.
  ResultCache cache(1);
  cache.Insert({1, 1}, Ids({5, 6}));
  const auto held = cache.Lookup({1, 1});
  cache.Insert({1, 2}, Ids({7}));
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, (std::vector<PointId>{5, 6}));
}

}  // namespace
}  // namespace vaq
