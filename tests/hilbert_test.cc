#include "delaunay/hilbert.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(HilbertTest, Order1IsTheBasicUShape) {
  // 2x2 curve visits (0,0) -> (0,1) -> (1,1) -> (1,0).
  EXPECT_EQ(HilbertD(1, 0, 0), 0u);
  EXPECT_EQ(HilbertD(1, 0, 1), 1u);
  EXPECT_EQ(HilbertD(1, 1, 1), 2u);
  EXPECT_EQ(HilbertD(1, 1, 0), 3u);
}

TEST(HilbertTest, BijectiveOnSmallGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 16; ++x) {
    for (std::uint32_t y = 0; y < 16; ++y) {
      EXPECT_TRUE(seen.insert(HilbertD(4, x, y)).second);
    }
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.rbegin(), 255u);  // Dense range [0, 255].
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining locality property of the curve.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_index(64);
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      by_index[HilbertD(3, x, y)] = {x, y};
    }
  }
  for (std::size_t i = 1; i < by_index.size(); ++i) {
    const auto [x0, y0] = by_index[i - 1];
    const auto [x1, y1] = by_index[i];
    const int manhattan = std::abs(static_cast<int>(x0) - static_cast<int>(x1)) +
                          std::abs(static_cast<int>(y0) - static_cast<int>(y1));
    EXPECT_EQ(manhattan, 1) << "jump at index " << i;
  }
}

TEST(HilbertOrderTest, PermutationOfAllIndices) {
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({i * 0.37 - std::floor(i * 0.37), i * 0.71 - std::floor(i * 0.71)});
  }
  const auto order = HilbertOrder(points);
  ASSERT_EQ(order.size(), points.size());
  std::set<std::uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), points.size());
}

TEST(HilbertOrderTest, SpatialLocalityBeatsRandomOrder) {
  // Total tour length along the Hilbert order should be far below the
  // identity (effectively random) order for scattered points.
  std::vector<Point> points;
  std::uint64_t state = 88172645463325252ULL;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 1000000) / 1000000.0;
  };
  for (int i = 0; i < 2000; ++i) points.push_back({next(), next()});
  const auto order = HilbertOrder(points);
  double hilbert_tour = 0.0, identity_tour = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    hilbert_tour += Distance(points[order[i - 1]], points[order[i]]);
    identity_tour += Distance(points[i - 1], points[i]);
  }
  EXPECT_LT(hilbert_tour, identity_tour * 0.25);
}

TEST(HilbertOrderTest, EmptyAndSingle) {
  EXPECT_TRUE(HilbertOrder({}).empty());
  EXPECT_EQ(HilbertOrder({{0.5, 0.5}}).size(), 1u);
}

TEST(HilbertOrderTest, DegenerateCollinearInput) {
  std::vector<Point> points;
  for (int i = 0; i < 50; ++i) points.push_back({i * 1.0, 3.0});
  const auto order = HilbertOrder(points);
  EXPECT_EQ(order.size(), 50u);
  std::set<std::uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 50u);
}

}  // namespace
}  // namespace vaq
