// End-to-end integration tests across module boundaries: dataset files ->
// database -> queries; bulk vs incremental index construction; the
// experiment pipeline against direct query runs.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "index/rtree.h"
#include "workload/dataset_io.h"
#include "workload/experiment.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(IntegrationTest, DatasetRoundTripPreservesQueryResults) {
  Rng rng(1);
  const auto points = GenerateUniformPoints(3000, kUnit, &rng);
  const std::string points_path =
      std::string(::testing::TempDir()) + "/integration_points.vaqp";
  const std::string poly_path =
      std::string(::testing::TempDir()) + "/integration_poly.csv";

  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  Rng qrng(2);
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);

  ASSERT_TRUE(SavePointsBinary(points_path, points));
  ASSERT_TRUE(SavePolygonCsv(poly_path, area));

  PointDatabase original(points);
  const auto expected = VoronoiAreaQuery(&original).Run(area, nullptr);

  // A "different machine": everything reloaded from disk.
  std::vector<Point> loaded_points;
  Polygon loaded_area;
  ASSERT_TRUE(LoadPointsBinary(points_path, &loaded_points));
  ASSERT_TRUE(LoadPolygonCsv(poly_path, &loaded_area));
  PointDatabase reloaded(std::move(loaded_points));
  EXPECT_EQ(VoronoiAreaQuery(&reloaded).Run(loaded_area, nullptr), expected);
  EXPECT_EQ(TraditionalAreaQuery(&reloaded).Run(loaded_area, nullptr),
            expected);

  std::remove(points_path.c_str());
  std::remove(poly_path.c_str());
}

TEST(IntegrationTest, BulkAndIncrementalRTreesAnswerIdentically) {
  Rng rng(3);
  const auto points = GenerateUniformPoints(4000, kUnit, &rng);
  RTree bulk;
  bulk.Build(points);
  RTree incremental;
  incremental.Build({});
  for (std::size_t i = 0; i < points.size(); ++i) {
    incremental.Insert(points[i], static_cast<PointId>(i));
  }
  Rng qrng(4);
  for (int q = 0; q < 25; ++q) {
    const double x = qrng.Uniform(0, 0.8), y = qrng.Uniform(0, 0.8);
    const Box window = Box::FromExtents(x, y, x + 0.15, y + 0.15);
    std::vector<PointId> a, b;
    bulk.WindowQuery(window, &a);
    incremental.WindowQuery(window, &b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    const Point probe{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    EXPECT_EQ(SquaredDistance(points[bulk.NearestNeighbor(probe)], probe),
              SquaredDistance(points[incremental.NearestNeighbor(probe)],
                              probe));
  }
}

TEST(IntegrationTest, TraditionalQueryWorksOnIncrementallyBuiltIndex) {
  // The traditional method with an injected dynamically-built index must
  // equal the database's bulk-loaded R-tree result.
  Rng rng(5);
  const auto points = GenerateUniformPoints(3000, kUnit, &rng);
  PointDatabase db(points);
  // An injected index must index the database's internal (Hilbert-ordered)
  // array so its ids agree with the database's id space.
  RTree dynamic_tree(8, 3, RTree::SplitStrategy::kLinear);
  dynamic_tree.Build({});
  for (std::size_t i = 0; i < db.points().size(); ++i) {
    dynamic_tree.Insert(db.points()[i], static_cast<PointId>(i));
  }
  const TraditionalAreaQuery with_bulk(&db);
  const TraditionalAreaQuery with_dynamic(&db, &dynamic_tree);
  Rng qrng(6);
  PolygonSpec spec;
  spec.query_size_fraction = 0.03;
  for (int rep = 0; rep < 10; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
    EXPECT_EQ(with_dynamic.Run(area, nullptr), with_bulk.Run(area, nullptr));
  }
}

TEST(IntegrationTest, ExperimentRowMatchesDirectRuns) {
  // The experiment runner's averages must equal a hand-rolled loop over
  // the same seeds.
  ExperimentConfig config;
  config.data_size = 1500;
  config.query_size_fraction = 0.04;
  config.repetitions = 8;
  config.seed = 99;
  const ExperimentRow row = RunExperiment(config);

  Rng data_rng(config.seed);
  PointDatabase db(GenerateUniformPoints(config.data_size, kUnit, &data_rng));
  const TraditionalAreaQuery trad(&db);
  Rng query_rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  PolygonSpec spec;
  spec.vertices = config.polygon_vertices;
  spec.query_size_fraction = config.query_size_fraction;
  double candidates = 0.0;
  QueryStats stats;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &query_rng);
    trad.Run(area, &stats);
    candidates += static_cast<double>(stats.candidates);
  }
  EXPECT_DOUBLE_EQ(row.traditional.candidates,
                   candidates / config.repetitions);
}

TEST(IntegrationTest, VoronoiCellsReflectDensity) {
  // Clustered data: the mean Voronoi cell inside a cluster must be far
  // smaller than cells in the sparse outskirts — a cross-check of the
  // whole Delaunay -> Voronoi -> clipping chain on non-uniform input.
  Rng rng(7);
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) {  // Dense blob.
    points.push_back({rng.Uniform(0.4, 0.6), rng.Uniform(0.4, 0.6)});
  }
  for (int i = 0; i < 40; ++i) {  // Sparse background.
    const double x = rng.Uniform(0, 1), y = rng.Uniform(0, 1);
    if (x > 0.35 && x < 0.65 && y > 0.35 && y < 0.65) continue;
    points.push_back({x, y});
  }
  PointDatabase db(std::move(points));
  const VoronoiDiagram& vd = db.voronoi();
  double blob_area = 0.0, bg_area = 0.0;
  int blob_n = 0, bg_n = 0;
  for (PointId v = 0; v < vd.size(); ++v) {
    const Point& g = vd.generator(v);
    if (g.x > 0.4 && g.x < 0.6 && g.y > 0.4 && g.y < 0.6) {
      blob_area += vd.CellArea(v);
      ++blob_n;
    } else {
      bg_area += vd.CellArea(v);
      ++bg_n;
    }
  }
  ASSERT_GT(blob_n, 0);
  ASSERT_GT(bg_n, 0);
  EXPECT_LT(blob_area / blob_n, 0.1 * (bg_area / bg_n));
}

}  // namespace
}  // namespace vaq
