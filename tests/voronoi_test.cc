#include "delaunay/voronoi.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(VoronoiTest, TwoByTwoGridCellsAreQuadrants) {
  // Four symmetric generators: cells are the four quadrants of the box.
  DelaunayTriangulation dt(
      {{0.25, 0.25}, {0.75, 0.25}, {0.25, 0.75}, {0.75, 0.75}});
  VoronoiDiagram vd(dt, kUnit);
  ASSERT_EQ(vd.size(), 4u);
  for (PointId v = 0; v < 4; ++v) {
    EXPECT_NEAR(vd.CellArea(v), 0.25, 1e-9);
    EXPECT_TRUE(vd.CellContains(v, vd.generator(v)));
  }
  EXPECT_NEAR(vd.TotalArea(), 1.0, 1e-9);
}

TEST(VoronoiTest, CellsContainTheirGenerators) {
  Rng rng(200);
  DelaunayTriangulation dt(GenerateUniformPoints(500, kUnit, &rng));
  VoronoiDiagram vd(dt, kUnit);
  for (PointId v = 0; v < vd.size(); ++v) {
    EXPECT_TRUE(vd.CellContains(v, vd.generator(v))) << "cell " << v;
  }
}

TEST(VoronoiTest, CellsTileTheClipBox) {
  // Property 1 (implicitly): the diagram partitions space — clipped cell
  // areas must sum to the clip-box area.
  Rng rng(201);
  DelaunayTriangulation dt(GenerateUniformPoints(300, kUnit, &rng));
  VoronoiDiagram vd(dt, kUnit);
  EXPECT_NEAR(vd.TotalArea(), kUnit.Area(), 1e-6);
}

TEST(VoronoiTest, NearestGeneratorOwnsTheCell) {
  // Paper Property 3: q lies in V(P, p') iff p' is the nearest point to q.
  Rng rng(202);
  const auto points = GenerateUniformPoints(400, kUnit, &rng);
  DelaunayTriangulation dt(points);
  VoronoiDiagram vd(dt, kUnit);
  Rng qrng(203);
  for (int i = 0; i < 200; ++i) {
    const Point q{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    PointId nn = 0;
    double best = 1e300;
    for (PointId v = 0; v < points.size(); ++v) {
      const double d = SquaredDistance(points[v], q);
      if (d < best) {
        best = d;
        nn = v;
      }
    }
    EXPECT_TRUE(vd.CellContains(nn, q)) << "query " << q;
  }
}

TEST(VoronoiTest, NearestNeighborOfGeneratorIsVoronoiNeighbor) {
  // Paper Property 2: the nearest generator to p is one of p's Voronoi
  // neighbours (shares a Voronoi edge <=> Delaunay-adjacent).
  Rng rng(204);
  const auto points = GenerateUniformPoints(300, kUnit, &rng);
  DelaunayTriangulation dt(points);
  for (PointId v = 0; v < points.size(); ++v) {
    PointId nn = kInvalidPointId;
    double best = 1e300;
    for (PointId u = 0; u < points.size(); ++u) {
      if (u == v) continue;
      const double d = SquaredDistance(points[u], points[v]);
      if (d < best) {
        best = d;
        nn = u;
      }
    }
    const auto nbrs = dt.NeighborsOf(v);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), nn), nbrs.end());
  }
}

TEST(VoronoiTest, CellsAreConvex) {
  Rng rng(205);
  DelaunayTriangulation dt(GenerateUniformPoints(200, kUnit, &rng));
  VoronoiDiagram vd(dt, kUnit);
  for (PointId v = 0; v < vd.size(); ++v) {
    const auto& ring = vd.cell(v);
    if (ring.size() < 3) continue;
    // Signed areas of consecutive triplets never flip sign.
    int sign = 0;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const Point& a = ring[i];
      const Point& b = ring[(i + 1) % ring.size()];
      const Point& c = ring[(i + 2) % ring.size()];
      const double cross = (b - a).Cross(c - b);
      if (std::abs(cross) < 1e-15) continue;
      const int s = cross > 0 ? 1 : -1;
      if (sign == 0) sign = s;
      EXPECT_EQ(s, sign) << "reflex corner in cell " << v;
    }
  }
}

TEST(VoronoiTest, DiagramDeterministicForSamePoints) {
  // Paper Property 1: the Voronoi diagram of a point set is unique. Two
  // builds over the same points must produce identical cells.
  Rng rng(206);
  const auto points = GenerateUniformPoints(150, kUnit, &rng);
  DelaunayTriangulation dt1(points);
  DelaunayTriangulation dt2(points);
  VoronoiDiagram vd1(dt1, kUnit);
  VoronoiDiagram vd2(dt2, kUnit);
  ASSERT_EQ(vd1.size(), vd2.size());
  for (PointId v = 0; v < vd1.size(); ++v) {
    EXPECT_NEAR(vd1.CellArea(v), vd2.CellArea(v), 1e-9);
  }
}

}  // namespace
}  // namespace vaq
