#include "core/area_query.h"

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "index/kdtree.h"
#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

class AreaQueryTest : public ::testing::Test {
 protected:
  AreaQueryTest() {
    Rng rng(42);
    db_ = std::make_unique<PointDatabase>(
        GenerateUniformPoints(2000, kUnit, &rng));
  }
  std::unique_ptr<PointDatabase> db_;
};

TEST_F(AreaQueryTest, AllThreeMethodsAgreeOnASquare) {
  const Polygon area = Polygon::FromBox(Box::FromExtents(0.2, 0.2, 0.6, 0.6));
  const auto brute = BruteForceAreaQuery(db_.get()).Run(area, nullptr);
  const auto trad = TraditionalAreaQuery(db_.get()).Run(area, nullptr);
  const auto vaq = VoronoiAreaQuery(db_.get()).Run(area, nullptr);
  EXPECT_FALSE(brute.empty());
  EXPECT_EQ(trad, brute);
  EXPECT_EQ(vaq, brute);
}

TEST_F(AreaQueryTest, ConcaveAreaAgrees) {
  // L-shaped concave area.
  const Polygon area({{0.1, 0.1},
                      {0.9, 0.1},
                      {0.9, 0.5},
                      {0.5, 0.5},
                      {0.5, 0.9},
                      {0.1, 0.9}});
  const auto brute = BruteForceAreaQuery(db_.get()).Run(area, nullptr);
  const auto trad = TraditionalAreaQuery(db_.get()).Run(area, nullptr);
  const auto vaq = VoronoiAreaQuery(db_.get()).Run(area, nullptr);
  EXPECT_EQ(trad, brute);
  EXPECT_EQ(vaq, brute);
}

TEST_F(AreaQueryTest, EmptyAreaReturnsNothing) {
  // Tiny polygon in a pointless corner (area smaller than point spacing,
  // placed in the gap off the data: no point inside).
  const Polygon area({{1e-7, 1e-7}, {2e-7, 1e-7}, {1.5e-7, 2e-7}});
  const auto trad = TraditionalAreaQuery(db_.get()).Run(area, nullptr);
  const auto vaq = VoronoiAreaQuery(db_.get()).Run(area, nullptr);
  EXPECT_EQ(trad, BruteForceAreaQuery(db_.get()).Run(area, nullptr));
  EXPECT_EQ(vaq, trad);
}

TEST_F(AreaQueryTest, WholeDomainReturnsEverything) {
  const Polygon area = Polygon::FromBox(Box::FromExtents(-0.1, -0.1, 1.1, 1.1));
  const auto vaq = VoronoiAreaQuery(db_.get()).Run(area, nullptr);
  EXPECT_EQ(vaq.size(), db_->size());
  const auto trad = TraditionalAreaQuery(db_.get()).Run(area, nullptr);
  EXPECT_EQ(trad.size(), db_->size());
}

TEST_F(AreaQueryTest, StatsSemantics) {
  const Polygon area = Polygon::FromBox(Box::FromExtents(0.3, 0.3, 0.7, 0.7));
  QueryStats trad_stats, vaq_stats;
  const auto trad = TraditionalAreaQuery(db_.get()).Run(area, &trad_stats);
  const auto vaq = VoronoiAreaQuery(db_.get()).Run(area, &vaq_stats);

  EXPECT_EQ(trad_stats.results, trad.size());
  EXPECT_EQ(vaq_stats.results, vaq.size());
  // For a rectangular area every MBR candidate is a result: traditional has
  // zero redundancy...
  EXPECT_EQ(trad_stats.RedundantValidations(), 0u);
  // ...while the Voronoi method still validates a boundary shell.
  EXPECT_GT(vaq_stats.RedundantValidations(), 0u);
  // Each candidate costs exactly one geometry load in both methods.
  EXPECT_EQ(trad_stats.geometry_loads, trad_stats.candidates);
  EXPECT_EQ(vaq_stats.geometry_loads, vaq_stats.candidates);
  // Both touched their index.
  EXPECT_GT(trad_stats.index_node_accesses, 0u);
  EXPECT_GT(vaq_stats.index_node_accesses, 0u);
  EXPECT_GT(vaq_stats.neighbor_expansions, 0u);
  EXPECT_GE(trad_stats.elapsed_ms, 0.0);
}

TEST_F(AreaQueryTest, VoronoiCandidatesAreFewerOnIrregularArea) {
  // The paper's headline effect: for a concave area the Voronoi method
  // validates fewer candidates than the window-filter method.
  Rng rng(7);
  int vaq_wins = 0;
  for (int i = 0; i < 20; ++i) {
    // A thin concave wedge: MBR much larger than the area.
    const double cx = rng.Uniform(0.3, 0.7), cy = rng.Uniform(0.3, 0.7);
    const Polygon area({{cx - 0.2, cy - 0.2},
                        {cx, cy - 0.18},
                        {cx + 0.2, cy - 0.2},
                        {cx, cy + 0.2}});
    QueryStats trad_stats, vaq_stats;
    TraditionalAreaQuery(db_.get()).Run(area, &trad_stats);
    VoronoiAreaQuery(db_.get()).Run(area, &vaq_stats);
    if (vaq_stats.candidates < trad_stats.candidates) ++vaq_wins;
  }
  EXPECT_GE(vaq_wins, 18);
}

TEST_F(AreaQueryTest, RepeatedRunsAreDeterministic) {
  const Polygon area({{0.2, 0.3}, {0.8, 0.25}, {0.7, 0.8}, {0.4, 0.6}});
  const VoronoiAreaQuery q(db_.get());
  const auto first = q.Run(area, nullptr);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.Run(area, nullptr), first);
  }
}

TEST_F(AreaQueryTest, AlternativeSeedIndexGivesSameResult) {
  // Paper: "the index used to provide the NN query in our method is also
  // R-tree" — but any correct NN index must give the same answer.
  KDTree kdtree;
  kdtree.Build(db_->points());
  const Polygon area({{0.2, 0.2}, {0.6, 0.3}, {0.7, 0.7}, {0.3, 0.6}});
  const VoronoiAreaQuery with_rtree(db_.get());
  const VoronoiAreaQuery with_kdtree(db_.get(), VoronoiAreaQuery::Options{},
                                     &kdtree);
  EXPECT_EQ(with_rtree.Run(area, nullptr), with_kdtree.Run(area, nullptr));
}

TEST(AreaQuerySmallDbTest, SinglePointDatabase) {
  PointDatabase db(std::vector<Point>{{0.5, 0.5}});
  const Polygon inside = Polygon::FromBox(Box::FromExtents(0.4, 0.4, 0.6, 0.6));
  const Polygon outside = Polygon::FromBox(Box::FromExtents(0.7, 0.7, 0.9, 0.9));
  EXPECT_EQ(VoronoiAreaQuery(&db).Run(inside, nullptr).size(), 1u);
  EXPECT_TRUE(VoronoiAreaQuery(&db).Run(outside, nullptr).empty());
  EXPECT_EQ(TraditionalAreaQuery(&db).Run(inside, nullptr).size(), 1u);
  EXPECT_TRUE(TraditionalAreaQuery(&db).Run(outside, nullptr).empty());
}

TEST(AreaQuerySmallDbTest, SeedOutsideAreaStillCorrect) {
  // The NN of the interior position may lie outside A (sparse data): the
  // seed is then a boundary point and the flood must still find the result
  // through crossing edges (paper Property 9).
  PointDatabase db(std::vector<Point>{{0.05, 0.5},
                                      {0.95, 0.5},
                                      {0.5, 0.04},
                                      {0.5, 0.96},
                                      {0.54, 0.55},    // Decoy outside A.
                                      {0.59, 0.47}});  // The only point in A.
  const Polygon area({{0.45, 0.45}, {0.6, 0.45}, {0.6, 0.6}});
  ASSERT_FALSE(area.Contains({0.54, 0.55}));
  ASSERT_TRUE(area.Contains({0.59, 0.47}));
  // The decoy is the nearest point to A's interior point. Result ids live
  // in the database's internal (Hilbert-clustered) id space; the input
  // positions map through InternalId.
  const Point seed_pos = area.InteriorPoint();
  EXPECT_EQ(db.rtree().NearestNeighbor(seed_pos), db.InternalId(4));
  const auto result = VoronoiAreaQuery(&db).Run(area, nullptr);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], db.InternalId(5));
  EXPECT_EQ(db.OriginalId(result[0]), 5u);
}

}  // namespace
}  // namespace vaq
