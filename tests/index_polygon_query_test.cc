// Polygon-aware index filtering: `SpatialIndex::PolygonQuery` must return
// exactly the brute-force polygon filter on every index (R-tree bulk
// loaded and dynamically grown, kd-tree, quadtree, uniform grid), while
// pruning outside subtrees and bulk-accepting inside ones.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "geometry/prepared_area.h"
#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/quadtree.h"
#include "index/rtree.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

std::vector<PointId> BruteFilter(const std::vector<Point>& points,
                                 const Polygon& poly) {
  std::vector<PointId> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (poly.Contains(points[i])) out.push_back(static_cast<PointId>(i));
  }
  return out;
}

class IndexPolygonQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(321);
    points_ = GeneratePoints(4000, kUnit, PointDistribution::kClustered,
                             &rng);
    indexes_.push_back(std::make_unique<RTree>());
    indexes_.push_back(std::make_unique<KDTree>());
    indexes_.push_back(std::make_unique<Quadtree>());
    indexes_.push_back(std::make_unique<GridIndex>());
    for (auto& index : indexes_) index->Build(points_);
  }

  std::vector<Point> points_;
  std::vector<std::unique_ptr<SpatialIndex>> indexes_;
};

TEST_F(IndexPolygonQueryTest, MatchesBruteForceOnEveryIndex) {
  Rng qrng(654);
  PolygonSpec spec;
  for (const double qs : {0.01, 0.08, 0.32}) {
    spec.query_size_fraction = qs;
    for (int rep = 0; rep < 10; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
      const PreparedArea prep(area);
      const std::vector<PointId> truth = BruteFilter(points_, area);
      for (const auto& index : indexes_) {
        std::vector<PointId> got;
        index->PolygonQuery(prep, &got);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, truth)
            << index->Name() << " qs " << qs << " rep " << rep;
      }
    }
  }
}

TEST_F(IndexPolygonQueryTest, BulkAcceptsAndPrunes) {
  // A large query area must produce bulk-accepted points on tree indexes
  // and touch fewer nodes than window-query + full refinement would.
  Rng qrng(99);
  PolygonSpec spec;
  spec.query_size_fraction = 0.32;
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
  const PreparedArea prep(area);
  for (const auto& index : indexes_) {
    IndexStats stats;
    std::vector<PointId> got;
    index->PolygonQuery(prep, &got, &stats);
    EXPECT_GT(stats.bulk_accepted, 0u) << index->Name();
    EXPECT_LE(stats.bulk_accepted, stats.entries_reported) << index->Name();
    EXPECT_EQ(stats.entries_reported, got.size()) << index->Name();
  }
}

TEST_F(IndexPolygonQueryTest, DynamicallyGrownRTree) {
  RTree rtree;
  rtree.Build(points_);
  Rng rng(12);
  std::vector<Point> all = points_;
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    rtree.Insert(p, static_cast<PointId>(all.size()));
    all.push_back(p);
  }
  Rng qrng(13);
  PolygonSpec spec;
  spec.query_size_fraction = 0.16;
  for (int rep = 0; rep < 5; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
    const PreparedArea prep(area);
    std::vector<PointId> got;
    rtree.PolygonQuery(prep, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteFilter(all, area)) << "rep " << rep;
  }
}

TEST_F(IndexPolygonQueryTest, EmptyIndexAndDisjointArea) {
  RTree empty;
  empty.Build({});
  Rng qrng(5);
  PolygonSpec spec;
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
  const PreparedArea prep(area);
  std::vector<PointId> got;
  empty.PolygonQuery(prep, &got);
  EXPECT_TRUE(got.empty());

  // Area entirely off the data domain: everything prunes.
  const Polygon off = Polygon::FromBox(Box::FromExtents(5, 5, 6, 6));
  const PreparedArea off_prep(off);
  for (const auto& index : indexes_) {
    got.clear();
    IndexStats stats;
    index->PolygonQuery(off_prep, &got, &stats);
    EXPECT_TRUE(got.empty()) << index->Name();
  }
}

TEST_F(IndexPolygonQueryTest, TraditionalPolygonFilterMatchesWindowFilter) {
  PointDatabase db(points_);
  const TraditionalAreaQuery window_filter(&db);
  TraditionalAreaQuery::Options options;
  options.filter = TraditionalAreaQuery::Filter::kPolygonIndex;
  const TraditionalAreaQuery polygon_filter(&db, nullptr, options);
  EXPECT_EQ(polygon_filter.Name(), "traditional-polyfilter");

  Rng qrng(31);
  PolygonSpec spec;
  for (const double qs : {0.01, 0.32}) {
    spec.query_size_fraction = qs;
    for (int rep = 0; rep < 8; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
      QueryStats ws, ps;
      const auto expected = window_filter.Run(area, &ws);
      const auto got = polygon_filter.Run(area, &ps);
      EXPECT_EQ(got, expected) << "qs " << qs << " rep " << rep;
      // The polygon filter's candidate set is the result set: no redundant
      // validations, and every fetched object is returned.
      EXPECT_EQ(ps.candidates, ps.results);
      EXPECT_EQ(ps.RedundantValidations(), 0u);
      EXPECT_LE(ps.candidates, ws.candidates);
    }
  }
}

}  // namespace
}  // namespace vaq
