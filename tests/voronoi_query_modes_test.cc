// Tests of the two expansion rules of VoronoiAreaQuery, including the
// documented completeness caveat of the paper's segment rule on
// pathological comb-shaped queries (DESIGN.md, "Known algorithmic caveat").

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(CombPolygonTest, ShapeIsSimpleAndConcave) {
  const Polygon comb =
      GenerateCombPolygon(Box::FromExtents(0.1, 0.1, 0.9, 0.9), 4);
  EXPECT_TRUE(comb.IsSimple());
  EXPECT_LT(comb.Area(), comb.Bounds().Area());
  // Points in the prongs are inside; points in the gaps are not.
  EXPECT_TRUE(comb.Contains({0.15, 0.8}));   // First prong.
  EXPECT_FALSE(comb.Contains({0.25, 0.8}));  // First gap.
}

TEST(VoronoiQueryModesTest, CellOverlapIsCompleteOnCombs) {
  // Dense uniform points; comb query. The cell-overlap rule is provably
  // complete for any connected area.
  Rng rng(88);
  PointDatabase db(GenerateUniformPoints(4000, kUnit, &rng));
  VoronoiAreaQuery::Options options;
  options.expansion = VoronoiAreaQuery::ExpansionRule::kCellOverlap;
  const VoronoiAreaQuery vaq(&db, options);
  const BruteForceAreaQuery brute(&db);
  for (int teeth = 2; teeth <= 6; ++teeth) {
    const Polygon comb =
        GenerateCombPolygon(Box::FromExtents(0.05, 0.05, 0.95, 0.95), teeth);
    EXPECT_EQ(vaq.Run(comb, nullptr), brute.Run(comb, nullptr))
        << teeth << " teeth";
  }
}

TEST(VoronoiQueryModesTest, PaperRuleCompleteOnDenseData) {
  // With data dense relative to the comb's features, the segment rule also
  // recovers everything: crossing edges exist wherever points sit near the
  // boundary.
  Rng rng(89);
  PointDatabase db(GenerateUniformPoints(8000, kUnit, &rng));
  const VoronoiAreaQuery vaq(&db);
  const BruteForceAreaQuery brute(&db);
  const Polygon comb =
      GenerateCombPolygon(Box::FromExtents(0.05, 0.05, 0.95, 0.95), 3);
  EXPECT_EQ(vaq.Run(comb, nullptr), brute.Run(comb, nullptr));
}

TEST(VoronoiQueryModesTest, PaperRuleCanMissAcrossPointFreeCorridors) {
  // The documented caveat, constructed deterministically. Query area: a
  // two-pronged comb (prongs [0.1,0.2]x[0.102,0.9] and [0.8,0.9]x
  // [0.102,0.9] joined by a hair-thin spine y in [0.1,0.102]). Data:
  //  * blob A: 40 points inside the left prong  (x 0.12-0.18, y 0.4-0.6);
  //  * blob B: 40 points inside the right prong (x 0.82-0.88, y 0.4-0.6);
  //  * two dense vertical "shield" columns of points at x=0.35 and x=0.65
  //    (y 0.15..0.95, all outside A, all above the spine).
  // The columns cut every direct Delaunay edge between the two sides, so
  // blob B's only Delaunay neighbours are column-2 points. Column-2 points
  // are reachable from the flood only through column-1 -> column-2 edges,
  // and none of those segments intersects A (they stay in the gap above the
  // spine). Hence Algorithm 1's expansion rule strands the flood on the
  // left side: completeness fails across the point-free corridor.
  std::vector<Point> points;
  Rng rng(90);
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.Uniform(0.12, 0.18), rng.Uniform(0.40, 0.60)});
    points.push_back({rng.Uniform(0.82, 0.88), rng.Uniform(0.40, 0.60)});
  }
  for (int i = 0; i <= 20; ++i) {
    const double y = 0.15 + 0.04 * i;
    points.push_back({0.35, y});
    points.push_back({0.65, y});
  }
  PointDatabase db(std::move(points));

  const Polygon comb({{0.1, 0.1},
                      {0.9, 0.1},
                      {0.9, 0.9},
                      {0.8, 0.9},
                      {0.8, 0.102},
                      {0.2, 0.102},
                      {0.2, 0.9},
                      {0.1, 0.9}});
  ASSERT_TRUE(comb.IsSimple());

  const auto truth = BruteForceAreaQuery(&db).Run(comb, nullptr);
  ASSERT_EQ(truth.size(), 80u);  // Both blobs, no column points.

  const auto paper_result = VoronoiAreaQuery(&db).Run(comb, nullptr);
  // The paper rule finds exactly one blob. (If this ever starts finding
  // both, the caveat documented in DESIGN.md should be revisited.)
  EXPECT_EQ(paper_result.size(), 40u);

  // The conservative cell-overlap rule recovers the full result.
  VoronoiAreaQuery::Options options;
  options.expansion = VoronoiAreaQuery::ExpansionRule::kCellOverlap;
  const auto safe_result = VoronoiAreaQuery(&db, options).Run(comb, nullptr);
  EXPECT_EQ(safe_result, truth);
}

TEST(VoronoiQueryModesTest, BothRulesValidateSimilarCandidateCounts) {
  // The two rules' candidate sets are NOT subset-ordered (a crossing edge
  // can reach a point whose cell misses A, and vice versa a cell can touch
  // A while no single edge does), but on the paper's workload they agree
  // on the result and stay within a few percent of each other in size.
  Rng rng(91);
  PointDatabase db(GenerateUniformPoints(3000, kUnit, &rng));
  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  Rng qrng(92);
  VoronoiAreaQuery::Options safe;
  safe.expansion = VoronoiAreaQuery::ExpansionRule::kCellOverlap;
  const VoronoiAreaQuery paper_q(&db);
  const VoronoiAreaQuery safe_q(&db, safe);
  for (int rep = 0; rep < 10; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
    QueryStats ps, ss;
    const auto paper_result = paper_q.Run(area, &ps);
    const auto safe_result = safe_q.Run(area, &ss);
    EXPECT_EQ(paper_result, safe_result);
    EXPECT_GE(ps.candidates, ps.results);
    EXPECT_GE(ss.candidates, ss.results);
    EXPECT_NEAR(static_cast<double>(ss.candidates),
                static_cast<double>(ps.candidates),
                0.15 * static_cast<double>(ps.candidates));
  }
}

TEST(VoronoiQueryModesTest, CellOverlapCompleteWhenAreaEscapesClipBox) {
  // Regression for the clipped-cell escape hatch (found by the sharded
  // differential bench): the materialised cells tile only the diagram's
  // clip box, so a query polygon reaching beyond it can have a
  // *disconnected* intersection with the box — here a U whose two prongs
  // dip into the data's extent while the connecting bridge passes
  // underneath it. Without treating clipped cells as intersecting the
  // escaped part of A, the flood stalls at the box border and returns
  // only the seed's prong.
  Rng rng(93);
  // Uniform data (a jittered grid's near-collinear hull rows grow long
  // sliver Delaunay edges that can bridge the prong gap in one hop and
  // mask the defect).
  PointDatabase db(GenerateUniformPoints(
      600, Box::FromExtents(0.40, 0.35, 0.60, 0.65), &rng));
  const Polygon u_shape(std::vector<Point>{{0.40, 0.05},
                                           {0.60, 0.05},
                                           {0.60, 0.64},
                                           {0.55, 0.64},
                                           {0.55, 0.15},
                                           {0.45, 0.15},
                                           {0.45, 0.64},
                                           {0.40, 0.64}});
  ASSERT_TRUE(u_shape.IsSimple());
  // The bridge lies below the (5%-inflated) clip box of the data.
  ASSERT_LT(u_shape.Bounds().min.y, db.bounds().min.y - 0.1);

  const std::vector<PointId> truth =
      BruteForceAreaQuery(&db).Run(u_shape, nullptr);
  ASSERT_GT(truth.size(), 0u);

  VoronoiAreaQuery::Options options;
  options.expansion = VoronoiAreaQuery::ExpansionRule::kCellOverlap;
  EXPECT_EQ(VoronoiAreaQuery(&db, options).Run(u_shape, nullptr), truth);
}

}  // namespace
}  // namespace vaq
