#include "index/rtree.h"

#include <algorithm>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace vaq {
namespace {

std::vector<Point> RandomPoints(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back({dist(rng), dist(rng)});
  return points;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  std::vector<PointId> out;
  tree.WindowQuery(Box::FromExtents(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.NearestNeighbor({0.5, 0.5}), kInvalidPointId);
}

TEST(RTreeTest, BulkLoadSmall) {
  RTree tree;
  tree.Build({{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}});
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Height(), 1);  // Fits in one leaf.
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(RTreeTest, BulkLoadInvariantsAtScale) {
  RTree tree;
  tree.Build(RandomPoints(20000, 1));
  EXPECT_EQ(tree.size(), 20000u);
  EXPECT_GE(tree.Height(), 3);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(RTreeTest, DynamicInsertInvariants) {
  RTree tree;
  const auto points = RandomPoints(3000, 2);
  tree.Build({});
  for (std::size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<PointId>(i));
  }
  EXPECT_EQ(tree.size(), points.size());
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;

  // Every inserted point must be findable by an exact window query.
  for (std::size_t i = 0; i < 100; ++i) {
    std::vector<PointId> out;
    tree.WindowQuery(Box(points[i]), &out);
    EXPECT_NE(std::find(out.begin(), out.end(), static_cast<PointId>(i)),
              out.end());
  }
}

TEST(RTreeTest, InsertIntoBulkLoadedTree) {
  RTree tree;
  auto points = RandomPoints(5000, 3);
  tree.Build(points);
  const auto extra = RandomPoints(500, 4);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    tree.Insert(extra[i], static_cast<PointId>(points.size() + i));
  }
  EXPECT_EQ(tree.size(), 5500u);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(RTreeTest, WindowQueryMatchesBruteForce) {
  const auto points = RandomPoints(5000, 5);
  RTree tree;
  tree.Build(points);
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int q = 0; q < 50; ++q) {
    const double x0 = dist(rng), y0 = dist(rng);
    const Box window =
        Box::FromExtents(x0, y0, x0 + dist(rng) * 0.3, y0 + dist(rng) * 0.3);
    std::vector<PointId> got;
    tree.WindowQuery(window, &got);
    std::sort(got.begin(), got.end());
    std::vector<PointId> expect;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (window.Contains(points[i])) {
        expect.push_back(static_cast<PointId>(i));
      }
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(RTreeTest, NearestNeighborMatchesBruteForce) {
  const auto points = RandomPoints(3000, 7);
  RTree tree;
  tree.Build(points);
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> dist(-0.2, 1.2);
  for (int q = 0; q < 100; ++q) {
    const Point query{dist(rng), dist(rng)};
    const PointId got = tree.NearestNeighbor(query);
    double best = 1e300;
    PointId expect = kInvalidPointId;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d = SquaredDistance(points[i], query);
      if (d < best) {
        best = d;
        expect = static_cast<PointId>(i);
      }
    }
    EXPECT_EQ(SquaredDistance(points[got], query), best);
    EXPECT_EQ(got, expect);
  }
}

TEST(RTreeTest, KnnOrderedByDistance) {
  const auto points = RandomPoints(2000, 9);
  RTree tree;
  tree.Build(points);
  const Point query{0.5, 0.5};
  std::vector<PointId> got;
  tree.KNearestNeighbors(query, 25, &got);
  ASSERT_EQ(got.size(), 25u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(SquaredDistance(points[got[i - 1]], query),
              SquaredDistance(points[got[i]], query));
  }
  // Matches a brute-force top-k.
  std::vector<PointId> all(points.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<PointId>(i);
  std::sort(all.begin(), all.end(), [&](PointId a, PointId b) {
    return SquaredDistance(points[a], query) <
           SquaredDistance(points[b], query);
  });
  all.resize(25);
  EXPECT_EQ(got, all);
}

TEST(RTreeTest, KnnMoreThanSizeReturnsAll) {
  RTree tree;
  tree.Build(RandomPoints(10, 10));
  std::vector<PointId> got;
  tree.KNearestNeighbors({0.5, 0.5}, 100, &got);
  EXPECT_EQ(got.size(), 10u);
}

TEST(RTreeTest, StatsCountNodeAccesses) {
  RTree tree;
  tree.Build(RandomPoints(10000, 11));
  IndexStats stats;
  std::vector<PointId> out;
  tree.WindowQuery(Box::FromExtents(0.4, 0.4, 0.6, 0.6), &out, &stats);
  EXPECT_GT(stats.node_accesses, 0u);
  EXPECT_EQ(stats.entries_reported, out.size());
  stats.Reset();
  EXPECT_EQ(stats.node_accesses, 0u);
}

TEST(RTreeTest, DuplicateCoordinatesSupported) {
  // The R-tree itself has no distinctness requirement.
  std::vector<Point> points(50, Point{0.5, 0.5});
  RTree tree;
  tree.Build(points);
  std::vector<PointId> out;
  tree.WindowQuery(Box(Point{0.5, 0.5}), &out);
  EXPECT_EQ(out.size(), 50u);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

}  // namespace
}  // namespace vaq
