// The sharding PR's verification harness: every sharded answer must be
// bit-identical to the unsharded oracle — the same four methods run on one
// monolithic `PointDatabase` over the same input — across randomized
// datasets, polygon areas and shard counts. Sharding introduces a class of
// correctness hazards the single-database tests cannot see (boundary
// points duplicated or dropped at shard cuts, id-map misroutes, stats
// mis-merges, snapshot skew), so the harness checks results, permutation
// invariance of the shard assignment, and the stats-merge invariants.

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "engine/query_engine.h"
#include "shard/sharded_area_query.h"
#include "shard/sharded_database.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

/// When VAQ_TEST_STORAGE=mmap (or mmap_uring) is set — the CI leg that
/// re-runs this differential suite out-of-core — every sharded database
/// serves its geometry through the paged backend with a deliberately tiny
/// cache, while the unsharded oracles stay in-memory: each EXPECT_EQ
/// below then additionally proves paged reads bit-identical to resident
/// reads under real miss traffic.
StorageOptions TestStorageFromEnv() {
  StorageOptions storage;
  const char* env = std::getenv("VAQ_TEST_STORAGE");
  if (env == nullptr) return storage;
  if (std::strcmp(env, "mmap") == 0) {
    storage.backend = StorageBackend::kMmap;
  } else if (std::strcmp(env, "mmap_uring") == 0) {
    storage.backend = StorageBackend::kMmapUring;
  }
  storage.cache_pages = 8;  // Tiny: force genuine evictions and misses.
  return storage;
}

ShardedDatabase::Options ShardOptions(std::size_t k) {
  ShardedDatabase::Options options;
  options.num_shards = k;
  options.shard.base.storage = TestStorageFromEnv();
  return options;
}
constexpr std::size_t kShardCounts[] = {1, 2, 4, 8, 16};

/// The unsharded ground truth for `method`, in the input-position id space
/// the sharded database's global stable ids live in.
std::vector<PointId> OracleRun(const PointDatabase& oracle,
                               const AreaQuery& query, const Polygon& area,
                               QueryContext& ctx) {
  std::vector<PointId> out;
  for (const PointId internal : query.Run(area, ctx)) {
    out.push_back(oracle.OriginalId(internal));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectMergedStatsInvariants(const QueryStats& s, std::size_t num_shards,
                                 std::size_t result_size) {
  // The epilogue invariant every unsharded method guarantees must survive
  // the per-shard summation.
  EXPECT_EQ(s.candidates, s.candidate_hits + s.visited_rejected);
  // Every shard is either pruned or queried, exactly once.
  EXPECT_EQ(s.shards_hit + s.shards_pruned, num_shards);
  EXPECT_EQ(s.results, result_size);
}

TEST(ShardDifferentialTest, MatchesUnshardedOracleAcrossShardCounts) {
  struct Dataset {
    std::size_t size;
    PointDistribution distribution;
    std::uint64_t seed;
  };
  const Dataset datasets[] = {
      {3000, PointDistribution::kUniform, 71},
      {2200, PointDistribution::kClustered, 72},
  };
  const double query_sizes[] = {0.01, 0.05, 0.20};

  QueryContext ctx;
  for (const Dataset& dataset : datasets) {
    Rng rng(dataset.seed);
    const std::vector<Point> points = GeneratePoints(
        dataset.size, kUnit, dataset.distribution, &rng);

    const PointDatabase oracle(points);
    const TraditionalAreaQuery oracle_traditional(&oracle);
    const VoronoiAreaQuery oracle_voronoi(&oracle);
    const GridSweepAreaQuery oracle_grid(&oracle);
    const BruteForceAreaQuery oracle_brute(&oracle);
    const AreaQuery* oracle_methods[] = {&oracle_voronoi, &oracle_traditional,
                                         &oracle_grid, &oracle_brute};
    const DynamicMethod methods[] = {
        DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
        DynamicMethod::kGridSweep, DynamicMethod::kBruteForce};

    for (const std::size_t k : kShardCounts) {
      const ShardedDatabase sharded(points, ShardOptions(k));
      for (const double query_size : query_sizes) {
        PolygonSpec spec;
        spec.query_size_fraction = query_size;
        const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
        for (std::size_t m = 0; m < 4; ++m) {
          const std::vector<PointId> truth =
              OracleRun(oracle, *oracle_methods[m], area, ctx);
          const ShardedAreaQuery query(&sharded, methods[m]);
          const std::vector<PointId> got = query.Run(area, ctx);
          EXPECT_EQ(got, truth)
              << "n=" << dataset.size << " K=" << k
              << " query_size=" << query_size << " method=" << query.Name();
          ExpectMergedStatsInvariants(ctx.stats, k, got.size());
        }
      }
    }
  }
}

TEST(ShardDifferentialTest, ScatterEngineMatchesInlineExecution) {
  // The parallel scatter path (legs as SubmitWith jobs on a dedicated
  // pool) must be bit-identical to the sequential inline path — and to
  // the oracle.
  Rng rng(1234);
  const std::vector<Point> points = GenerateUniformPoints(4000, kUnit, &rng);
  const PointDatabase oracle(points);
  const BruteForceAreaQuery oracle_brute(&oracle);
  const ShardedDatabase sharded(points, ShardOptions(8));
  QueryEngine scatter({.num_threads = 4});

  QueryContext ctx;
  PolygonSpec spec;
  spec.query_size_fraction = 0.10;
  for (int rep = 0; rep < 8; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    const std::vector<PointId> truth =
        OracleRun(oracle, oracle_brute, area, ctx);
    for (const DynamicMethod method :
         {DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
          DynamicMethod::kGridSweep, DynamicMethod::kBruteForce}) {
      const ShardedAreaQuery inline_query(&sharded, method);
      const ShardedAreaQuery parallel_query(&sharded, method, &scatter);
      const std::vector<PointId> inline_ids = inline_query.Run(area, ctx);
      const QueryStats inline_stats = ctx.stats;
      const std::vector<PointId> parallel_ids = parallel_query.Run(area, ctx);
      EXPECT_EQ(inline_ids, truth);
      EXPECT_EQ(parallel_ids, truth);
      // The merge is order-independent, so the two execution modes agree
      // on every additive counter (elapsed_ms differs, of course).
      EXPECT_EQ(ctx.stats.candidates, inline_stats.candidates);
      EXPECT_EQ(ctx.stats.candidate_hits, inline_stats.candidate_hits);
      EXPECT_EQ(ctx.stats.geometry_loads, inline_stats.geometry_loads);
      EXPECT_EQ(ctx.stats.shards_hit, inline_stats.shards_hit);
      EXPECT_EQ(ctx.stats.shards_pruned, inline_stats.shards_pruned);
      ExpectMergedStatsInvariants(ctx.stats, 8, parallel_ids.size());
    }
  }
  // Fan-out legs are invisible to the scatter engine's client statistics.
  EXPECT_EQ(scatter.Stats().queries_completed, 0u);
}

TEST(ShardDifferentialTest, SelfScatterEngineDegradesToInlineNotDeadlock) {
  // The documented misconfiguration: the sharded query registered with
  // the very engine it scatters into. All 2 workers fill up with parent
  // queries; without the OnWorkerThread guard every parent would block
  // forever on legs nobody can pop. With it, parents run their legs
  // inline and results stay exact.
  Rng rng(6060);
  const std::vector<Point> points = GenerateUniformPoints(2000, kUnit, &rng);
  const PointDatabase oracle(points);
  const BruteForceAreaQuery oracle_brute(&oracle);
  const ShardedDatabase sharded(points, ShardOptions(8));

  QueryEngine engine({.num_threads = 2});
  const ShardedAreaQuery query(&sharded, DynamicMethod::kVoronoi, &engine);
  const int method = engine.RegisterMethod(&query);

  PolygonSpec spec;
  spec.query_size_fraction = 0.15;
  QueryContext ctx;
  std::vector<Polygon> areas;
  for (int i = 0; i < 16; ++i) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }
  const std::vector<QueryResult> results = engine.RunBatch(areas, method);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(results[i].ids, OracleRun(oracle, oracle_brute, areas[i], ctx));
  }
}

TEST(ShardDifferentialTest, ShardAssignmentIsPermutationInvariant) {
  // The Hilbert cuts are key-aligned with coordinate tie-breaks, so the
  // partition is a function of the point *set*: shuffling the input must
  // reproduce the same per-shard point sets, and query results must map
  // through the permutation exactly.
  Rng rng(555);
  const std::vector<Point> points = GenerateUniformPoints(2500, kUnit, &rng);

  std::vector<PointId> perm(points.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::mt19937_64 shuffle_rng(99);
  std::shuffle(perm.begin(), perm.end(), shuffle_rng);
  std::vector<Point> shuffled;
  shuffled.reserve(points.size());
  for (const PointId original : perm) shuffled.push_back(points[original]);

  for (const std::size_t k : kShardCounts) {
    const ShardedDatabase a(points, ShardOptions(k));
    const ShardedDatabase b(shuffled, ShardOptions(k));

    // Identical per-shard point sets (coordinates, shard by shard).
    const auto snap_a = a.snapshot();
    const auto snap_b = b.snapshot();
    ASSERT_EQ(snap_a->shards().size(), k);
    for (std::size_t s = 0; s < k; ++s) {
      std::vector<Point> pts_a, pts_b;
      snap_a->shards()[s].snap->ForEachLive(
          [&](PointId, const Point& p) { pts_a.push_back(p); });
      snap_b->shards()[s].snap->ForEachLive(
          [&](PointId, const Point& p) { pts_b.push_back(p); });
      std::sort(pts_a.begin(), pts_a.end());
      std::sort(pts_b.begin(), pts_b.end());
      EXPECT_EQ(pts_a, pts_b) << "K=" << k << " shard=" << s;
    }

    // Identical answers modulo the id permutation.
    QueryContext ctx;
    PolygonSpec spec;
    spec.query_size_fraction = 0.08;
    Rng query_rng(556);
    for (int rep = 0; rep < 4; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &query_rng);
      const ShardedAreaQuery qa(&a, DynamicMethod::kVoronoi);
      const ShardedAreaQuery qb(&b, DynamicMethod::kVoronoi);
      const std::vector<PointId> ids_a = qa.Run(area, ctx);
      std::vector<PointId> ids_b_mapped;
      for (const PointId id : qb.Run(area, ctx)) {
        ids_b_mapped.push_back(perm[id]);
      }
      std::sort(ids_b_mapped.begin(), ids_b_mapped.end());
      EXPECT_EQ(ids_b_mapped, ids_a) << "K=" << k;
    }
  }
}

TEST(ShardDifferentialTest, ConcaveAreaSpanningShardsStaysComplete) {
  // The sharding trap the harness exists for: a concave area whose
  // intersection with a single shard's extent is *disconnected* (two
  // prongs dip into the lower-left shard, the bridge crosses other
  // shards). The shard-local voronoi flood must still find both prongs —
  // this is what forces the cell-overlap rule plus its clipped-cell
  // escape hatch on shard legs (DESIGN.md §9).
  Rng rng(4040);
  const std::vector<Point> points = GenerateUniformPoints(3000, kUnit, &rng);
  const PointDatabase oracle(points);
  const BruteForceAreaQuery oracle_brute(&oracle);
  const Polygon u_shape(std::vector<Point>{{0.05, 0.05},
                                           {0.15, 0.05},
                                           {0.15, 0.85},
                                           {0.30, 0.85},
                                           {0.30, 0.05},
                                           {0.40, 0.05},
                                           {0.40, 0.95},
                                           {0.05, 0.95}});
  ASSERT_TRUE(u_shape.IsSimple());

  QueryContext ctx;
  const std::vector<PointId> truth =
      OracleRun(oracle, oracle_brute, u_shape, ctx);
  ASSERT_GT(truth.size(), 100u);
  for (const std::size_t k : kShardCounts) {
    const ShardedDatabase sharded(points, ShardOptions(k));
    for (const DynamicMethod method :
         {DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
          DynamicMethod::kGridSweep, DynamicMethod::kBruteForce}) {
      const ShardedAreaQuery query(&sharded, method);
      EXPECT_EQ(query.Run(u_shape, ctx), truth)
          << "K=" << k << " method=" << query.Name();
    }
  }
}

TEST(ShardDifferentialTest, PruningSkipsShardsButNeverResults) {
  // A small query far from most shards must actually prune (the MBR test
  // does real work) while staying exact.
  Rng rng(808);
  const std::vector<Point> points = GenerateUniformPoints(4000, kUnit, &rng);
  const PointDatabase oracle(points);
  const BruteForceAreaQuery oracle_brute(&oracle);
  const ShardedDatabase sharded(points, ShardOptions(16));

  QueryContext ctx;
  PolygonSpec spec;
  spec.query_size_fraction = 0.01;
  std::uint64_t total_pruned = 0;
  for (int rep = 0; rep < 12; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    const std::vector<PointId> truth =
        OracleRun(oracle, oracle_brute, area, ctx);
    const ShardedAreaQuery query(&sharded, DynamicMethod::kTraditional);
    EXPECT_EQ(query.Run(area, ctx), truth);
    total_pruned += ctx.stats.shards_pruned;
  }
  // 1%-sized queries against 16 Hilbert-compact shards: the large
  // majority of shard MBRs must classify outside.
  EXPECT_GT(total_pruned, 12u * 8u);
}

}  // namespace
}  // namespace vaq
