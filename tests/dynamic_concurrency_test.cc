// Snapshot-consistent queries under concurrent mutation: `QueryEngine`
// workers run dynamic queries while writer threads insert, erase and
// compact. Built and run under TSan in CI — the snapshot pin must make
// `Submit` concurrent with `Insert` race-free, not just crash-free.

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_area_query.h"
#include "core/dynamic_point_database.h"
#include "engine/query_engine.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(DynamicConcurrencyTest, EngineQueriesConcurrentWithMutations) {
  Rng rng(2024);
  DynamicPointDatabase::Options options;
  options.compact_threshold = 512;  // Force compactions mid-stream.
  DynamicPointDatabase db(GenerateUniformPoints(4000, kUnit, &rng),
                          options);

  const DynamicAreaQuery voronoi(&db, DynamicMethod::kVoronoi);
  const DynamicAreaQuery traditional(&db, DynamicMethod::kTraditional);
  const DynamicAreaQuery grid_sweep(&db, DynamicMethod::kGridSweep);
  const DynamicAreaQuery brute(&db, DynamicMethod::kBruteForce);

  QueryEngine engine({.num_threads = 4});
  const int methods[] = {
      engine.RegisterMethod(&voronoi),
      engine.RegisterMethod(&traditional),
      engine.RegisterMethod(&grid_sweep),
      engine.RegisterMethod(&brute),
  };

  // Two writers churn (one calls explicit Compact too) while the main
  // thread pushes queries through the pool.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&db, &stop, w] {
      Rng wrng(100 + w);
      std::vector<PointId> mine;
      while (!stop.load(std::memory_order_relaxed)) {
        const double r = wrng.Uniform(0.0, 1.0);
        if (r < 0.55 || mine.empty()) {
          const auto id =
              db.Insert({wrng.Uniform(0, 1), wrng.Uniform(0, 1)});
          if (id.has_value()) mine.push_back(*id);
        } else if (r < 0.95) {
          const std::size_t at = static_cast<std::size_t>(wrng.UniformInt(
              0, static_cast<std::int64_t>(mine.size()) - 1));
          db.Erase(mine[at]);
          mine[at] = mine.back();
          mine.pop_back();
        } else if (w == 0) {
          db.Compact();
        }
      }
    });
  }

  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 200; ++i) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    futures.push_back(engine.Submit(area, methods[i % 4]));
  }
  for (auto& f : futures) {
    const QueryResult r = f.get();
    // Internal consistency of each result: sorted distinct stable ids and
    // a coherent stats slot. (Cross-method equality is not asserted here:
    // two queries of the same polygon may legitimately pin different
    // versions.)
    EXPECT_TRUE(std::is_sorted(r.ids.begin(), r.ids.end()));
    EXPECT_TRUE(std::adjacent_find(r.ids.begin(), r.ids.end()) ==
                r.ids.end());
    EXPECT_EQ(r.stats.results, r.ids.size());
    EXPECT_EQ(r.stats.candidates,
              r.stats.candidate_hits + r.stats.visited_rejected);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();

  // Quiesced: all four methods agree with each other again.
  QueryContext ctx;
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
  const std::vector<PointId> truth = brute.Run(area, ctx);
  EXPECT_EQ(voronoi.Run(area, ctx), truth);
  EXPECT_EQ(traditional.Run(area, ctx), truth);
  EXPECT_EQ(grid_sweep.Run(area, ctx), truth);
}

TEST(DynamicConcurrencyTest, SnapshotOutlivesCompactionDuringQuery) {
  // A pinned snapshot keeps the old base (and its query objects) alive
  // while compactions replace the published version repeatedly.
  Rng rng(31);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(1000, kUnit, &rng),
                          options);
  const auto snap = db.snapshot();

  std::thread churner([&db] {
    Rng wrng(32);
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 100; ++i) {
        db.Insert({wrng.Uniform(0, 1), wrng.Uniform(0, 1)});
      }
      db.Compact();
    }
  });

  // Meanwhile, query the pinned version directly: results must describe
  // the original 1000-point state regardless of the churn.
  PolygonSpec spec;
  spec.query_size_fraction = 0.2;
  QueryContext ctx;
  Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
  std::vector<PointId> expected;
  snap->ForEachLive([&](PointId id, const Point& p) {
    if (area.Contains(p)) expected.push_back(id);
  });
  std::sort(expected.begin(), expected.end());
  for (int i = 0; i < 50; ++i) {
    std::vector<PointId> got;
    for (const PointId internal :
         snap->BaseQuery(DynamicMethod::kVoronoi).Run(area, ctx)) {
      if (!snap->IsTombstoned(internal)) {
        got.push_back(snap->StableId(internal));
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
  churner.join();
  EXPECT_EQ(db.Compactions(), 5u);
  EXPECT_EQ(snap->live_size(), 1000u);
}

}  // namespace
}  // namespace vaq
