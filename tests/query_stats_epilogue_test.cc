// Regression: every exit path of `VoronoiAreaQuery::Run` — including the
// empty-database and invalid-seed early returns — must leave a fully
// populated stats slot (`elapsed_ms`, `index_node_accesses`), not the
// half-reset state the pre-epilogue code left behind.
//
// Also asserts the candidate-accounting invariant: the flood reports its
// visited-but-rejected candidates (the boundary shell) distinctly, so
//   candidates == candidate_hits + visited_rejected
// and `candidate_hits == results` on every exit path — the epilogue no
// longer hides the flood's true visited counts behind the result count.

#include <gtest/gtest.h>

#include "core/point_database.h"
#include "core/voronoi_area_query.h"
#include "index/rtree.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

void ExpectCandidateInvariant(const QueryStats& s) {
  EXPECT_EQ(s.candidate_hits, s.results);
  EXPECT_EQ(s.candidates, s.candidate_hits + s.visited_rejected);
  EXPECT_EQ(s.RedundantValidations(), s.visited_rejected);
}

Polygon TestArea() {
  Rng qrng(7);
  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  return GenerateQueryPolygon(spec, kUnit, &qrng);
}

TEST(QueryStatsEpilogueTest, EmptyDatabaseFillsStats) {
  PointDatabase db(std::vector<Point>{});
  const VoronoiAreaQuery vaq(&db);
  QueryContext ctx;
  // Poison the slot: Run must overwrite every field via its Reset() +
  // epilogue, not leave stale values or zeros from a skipped epilogue.
  ctx.stats.elapsed_ms = -1.0;
  ctx.stats.index_node_accesses = 12345;
  ctx.stats.results = 999;
  EXPECT_TRUE(vaq.Run(TestArea(), ctx).empty());
  EXPECT_GT(ctx.stats.elapsed_ms, 0.0);
  EXPECT_EQ(ctx.stats.index_node_accesses, 0u);
  EXPECT_EQ(ctx.stats.results, 0u);
  EXPECT_EQ(ctx.stats.candidates, 0u);
  ExpectCandidateInvariant(ctx.stats);
}

TEST(QueryStatsEpilogueTest, InvalidSeedFillsStats) {
  Rng rng(55);
  PointDatabase db(GenerateUniformPoints(500, kUnit, &rng));
  // An empty seed index: NearestNeighbor returns kInvalidPointId while the
  // database itself is non-empty, hitting the second early return.
  RTree empty_seed_index;
  empty_seed_index.Build({});
  const VoronoiAreaQuery vaq(&db, VoronoiAreaQuery::Options{},
                             &empty_seed_index);
  QueryContext ctx;
  ctx.stats.elapsed_ms = -1.0;
  ctx.stats.index_node_accesses = 12345;
  EXPECT_TRUE(vaq.Run(TestArea(), ctx).empty());
  EXPECT_GT(ctx.stats.elapsed_ms, 0.0);
  EXPECT_EQ(ctx.stats.index_node_accesses, 0u);
  EXPECT_EQ(ctx.stats.results, 0u);
  ExpectCandidateInvariant(ctx.stats);
}

TEST(QueryStatsEpilogueTest, NormalRunStillFillsStats) {
  Rng rng(56);
  PointDatabase db(GenerateUniformPoints(2000, kUnit, &rng));
  const VoronoiAreaQuery vaq(&db);
  QueryContext ctx;
  const auto result = vaq.Run(TestArea(), ctx);
  EXPECT_FALSE(result.empty());
  EXPECT_GT(ctx.stats.elapsed_ms, 0.0);
  EXPECT_GT(ctx.stats.index_node_accesses, 0u);
  EXPECT_EQ(ctx.stats.results, result.size());
  EXPECT_GE(ctx.stats.candidates, ctx.stats.results);
  // A normal run visits a non-empty boundary shell: the rejected
  // candidates must be reported, not folded into the hit count.
  EXPECT_GT(ctx.stats.visited_rejected, 0u);
  ExpectCandidateInvariant(ctx.stats);
}

TEST(QueryStatsEpilogueTest, PagedRunKeepsFetchAccountingInvariant) {
  // On a paged backend the epilogue additionally owns the page counters:
  //   page_cache_hits + page_cache_misses == pages_touched
  // must hold on a populated stats slot, and a flood over a cache smaller
  // than the dataset must report real page traffic.
  Rng rng(57);
  PointDatabase::Options options;
  options.storage.backend = StorageBackend::kMmap;
  options.storage.cache_pages = 4;  // 2000 pts ≈ 8 pages of 4 KiB.
  PointDatabase db(GenerateUniformPoints(2000, kUnit, &rng), options);
  const VoronoiAreaQuery vaq(&db);
  QueryContext ctx;
  ctx.stats.pages_touched = 12345;  // Poison: Run must reset, then count.
  const auto result = vaq.Run(TestArea(), ctx);
  EXPECT_FALSE(result.empty());
  EXPECT_GT(ctx.stats.pages_touched, 0u);
  EXPECT_EQ(ctx.stats.page_cache_hits + ctx.stats.page_cache_misses,
            ctx.stats.pages_touched);
  ExpectCandidateInvariant(ctx.stats);
}

}  // namespace
}  // namespace vaq
