#include "server/protocol.h"

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

namespace vaq {
namespace {

using PKind = ProtocolError::Kind;

PKind HeaderKind(std::span<const std::uint8_t> bytes) {
  try {
    DecodeFrameHeader(bytes);
  } catch (const ProtocolError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected ProtocolError from header decode";
  return PKind::kBadMagic;
}

std::vector<std::uint8_t> GoodHeader(Opcode op, std::uint32_t len) {
  std::vector<std::uint8_t> out;
  AppendFrame(out, op, {});
  out[8] = static_cast<std::uint8_t>(len & 0xFF);
  out[9] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
  out[10] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
  out[11] = static_cast<std::uint8_t>((len >> 24) & 0xFF);
  return out;
}

TEST(ProtocolHeaderTest, RoundTripsEveryOpcode) {
  for (const Opcode op :
       {Opcode::kQuery, Opcode::kInsert, Opcode::kErase, Opcode::kCompact,
        Opcode::kStats, Opcode::kPing, Opcode::kResultIds, Opcode::kQueryDone,
        Opcode::kMutated, Opcode::kStatsReply, Opcode::kPong,
        Opcode::kError}) {
    const std::vector<std::uint8_t> payload = {1, 2, 3};
    std::vector<std::uint8_t> frame;
    AppendFrame(frame, op, payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
    const FrameHeader h = DecodeFrameHeader(frame);
    EXPECT_EQ(h.opcode, op);
    EXPECT_EQ(h.payload_len, payload.size());
  }
}

TEST(ProtocolHeaderTest, RejectsShortBadMagicBadVersionBadFlags) {
  std::vector<std::uint8_t> frame = GoodHeader(Opcode::kPing, 0);
  for (std::size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_EQ(HeaderKind({frame.data(), n}), PKind::kTruncatedPayload)
        << "prefix length " << n;
  }
  auto bad = frame;
  bad[0] = 'X';
  EXPECT_EQ(HeaderKind(bad), PKind::kBadMagic);
  bad = frame;
  bad[4] = kProtocolVersion + 1;
  EXPECT_EQ(HeaderKind(bad), PKind::kBadVersion);
  bad = frame;
  bad[6] = 0x80;
  EXPECT_EQ(HeaderKind(bad), PKind::kBadFlags);
}

TEST(ProtocolHeaderTest, RejectsUnknownOpcodes) {
  std::vector<std::uint8_t> frame = GoodHeader(Opcode::kPing, 0);
  for (const std::uint8_t op : {0x00, 0x07, 0x42, 0x80, 0x87, 0xFF}) {
    auto bad = frame;
    bad[5] = op;
    EXPECT_EQ(HeaderKind(bad), PKind::kBadOpcode) << "opcode " << int{op};
  }
  EXPECT_FALSE(IsRequestOpcode(0x00));
  EXPECT_TRUE(IsRequestOpcode(0x01));
  EXPECT_TRUE(IsResponseOpcode(0x86));
  EXPECT_FALSE(IsResponseOpcode(0x87));
}

TEST(ProtocolHeaderTest, BoundsPayloadLengthBeforeAllocation) {
  // A header claiming a multi-gigabyte payload must be rejected from the
  // 12 fixed bytes alone — the caller never allocates for it.
  const auto huge =
      GoodHeader(Opcode::kQuery, static_cast<std::uint32_t>(0xFFFFFFFFu));
  EXPECT_EQ(HeaderKind(huge), PKind::kOversizedFrame);
  const auto just_over = GoodHeader(
      Opcode::kQuery, static_cast<std::uint32_t>(kMaxPayloadBytes + 1));
  EXPECT_EQ(HeaderKind(just_over), PKind::kOversizedFrame);
  const auto at_bound = GoodHeader(
      Opcode::kQuery, static_cast<std::uint32_t>(kMaxPayloadBytes));
  EXPECT_EQ(DecodeFrameHeader(at_bound).payload_len, kMaxPayloadBytes);
}

TEST(ProtocolPayloadTest, QueryRequestRoundTrips) {
  WireQueryRequest req;
  req.force_method = DynamicMethod::kGridSweep;
  req.use_cache = false;
  req.allow_scatter = true;
  req.deadline_ms = 125.5;
  req.wkt = "POLYGON ((0 0, 1 0, 1 1, 0 0))";
  const auto bytes = EncodeQueryRequest(req);
  const WireQueryRequest back = DecodeQueryRequest(bytes);
  ASSERT_TRUE(back.force_method.has_value());
  EXPECT_EQ(*back.force_method, DynamicMethod::kGridSweep);
  EXPECT_FALSE(back.use_cache);
  EXPECT_TRUE(back.allow_scatter);
  EXPECT_DOUBLE_EQ(back.deadline_ms, 125.5);
  EXPECT_EQ(back.wkt, req.wkt);

  WireQueryRequest planner;  // Defaults: auto method, cache+scatter on.
  planner.wkt = "POLYGON ((0 0, 2 0, 0 2, 0 0))";
  const WireQueryRequest back2 = DecodeQueryRequest(EncodeQueryRequest(planner));
  EXPECT_FALSE(back2.force_method.has_value());
  EXPECT_TRUE(back2.use_cache);
  EXPECT_TRUE(back2.allow_scatter);
  EXPECT_EQ(back2.deadline_ms, 0.0);
}

TEST(ProtocolPayloadTest, QueryRequestRejectsHostileFields) {
  const auto good = EncodeQueryRequest(
      {std::nullopt, true, true, 0.0, "POLYGON ((0 0, 1 0, 1 1, 0 0))"});

  auto bad = good;
  bad[0] = kNumDynamicMethods;  // One past the last method, not 0xFF.
  EXPECT_THROW(DecodeQueryRequest(bad), ProtocolError);

  bad = good;
  bad[1] = 0xF0;  // Unknown hint bits.
  EXPECT_THROW(DecodeQueryRequest(bad), ProtocolError);

  bad = good;
  bad[4] = 0xFF;  // deadline_ms -> denormal garbage is fine, but...
  // ...a NaN deadline must be rejected: flip to an all-ones exponent.
  for (int i = 4; i < 12; ++i) bad[i] = 0xFF;
  EXPECT_THROW(DecodeQueryRequest(bad), ProtocolError);

  bad = good;
  bad[12] += 1;  // wkt_len disagrees with the actual bytes.
  EXPECT_THROW(DecodeQueryRequest(bad), ProtocolError);

  // Truncation at every byte boundary: never crashes, always throws typed.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW(DecodeQueryRequest({good.data(), n}), ProtocolError)
        << "prefix " << n;
  }
}

TEST(ProtocolPayloadTest, MutationRequestsRoundTrip) {
  double x = 0.0, y = 0.0;
  DecodeInsertRequest(EncodeInsertRequest(3.25, -7.5), &x, &y);
  EXPECT_EQ(x, 3.25);
  EXPECT_EQ(y, -7.5);
  EXPECT_EQ(DecodeEraseRequest(EncodeEraseRequest(PointId{123456})),
            PointId{123456});

  // An erase id wider than PointId is a malformed payload, not a wrap.
  std::vector<std::uint8_t> wide(8, 0xFF);
  EXPECT_THROW(DecodeEraseRequest(wide), ProtocolError);
}

TEST(ProtocolPayloadTest, ResultIdsRoundTripAndRejectCountMismatch) {
  std::vector<PointId> ids;
  for (PointId i = 0; i < 2000; ++i) ids.push_back(i * 7 + 1);
  const auto bytes = EncodeResultIdsPayload(ids);
  EXPECT_EQ(DecodeResultIdsPayload(bytes), ids);
  EXPECT_TRUE(DecodeResultIdsPayload(EncodeResultIdsPayload({})).empty());

  // A count claiming more ids than the frame carries must not reserve
  // for the claim; it is a typed length mismatch.
  auto bad = bytes;
  bad[0] = 0xFF;
  bad[1] = 0xFF;
  bad[2] = 0xFF;
  bad[3] = 0x7F;
  EXPECT_THROW(DecodeResultIdsPayload(bad), ProtocolError);
}

TEST(ProtocolPayloadTest, StatsAndErrorAndMutationPayloadsRoundTrip) {
  WireQueryStats qs;
  qs.results = 42;
  qs.candidates = 99;
  qs.plan_method = 0b0100;
  qs.plan_reason = 0b1010;
  qs.result_cache_hits = 1;
  qs.elapsed_ms = 1.75;
  const WireQueryStats qs2 = DecodeQueryStatsPayload(EncodeQueryStatsPayload(qs));
  EXPECT_EQ(qs2.results, 42u);
  EXPECT_EQ(qs2.candidates, 99u);
  EXPECT_EQ(qs2.plan_method, 0b0100u);
  EXPECT_EQ(qs2.plan_reason, 0b1010u);
  EXPECT_EQ(qs2.result_cache_hits, 1u);
  EXPECT_DOUBLE_EQ(qs2.elapsed_ms, 1.75);

  WireServerStats ss;
  ss.queries_completed = 7;
  ss.throughput_qps = 123.5;
  ss.latency_p99_ms = 9.25;
  ss.connections_active = 3;
  ss.queries_shed = 2;
  ss.drains_completed = 1;
  ss.client_requests = 11;
  const WireServerStats ss2 =
      DecodeServerStatsPayload(EncodeServerStatsPayload(ss));
  EXPECT_EQ(ss2.queries_completed, 7u);
  EXPECT_DOUBLE_EQ(ss2.throughput_qps, 123.5);
  EXPECT_DOUBLE_EQ(ss2.latency_p99_ms, 9.25);
  EXPECT_EQ(ss2.connections_active, 3u);
  EXPECT_EQ(ss2.queries_shed, 2u);
  EXPECT_EQ(ss2.drains_completed, 1u);
  EXPECT_EQ(ss2.client_requests, 11u);

  const WireError err{WireErrorCode::kRetryLater, "queue full (capacity 64)"};
  const WireError err2 = DecodeErrorPayload(EncodeErrorPayload(err));
  EXPECT_EQ(err2.code, WireErrorCode::kRetryLater);
  EXPECT_EQ(err2.detail, err.detail);
  EXPECT_EQ(WireErrorCodeName(err2.code), "retry-later");

  const WireMutationResult m{true, 0x1234567890ull};
  const WireMutationResult m2 = DecodeMutationPayload(EncodeMutationPayload(m));
  EXPECT_TRUE(m2.ok);
  EXPECT_EQ(m2.value, 0x1234567890ull);
}

TEST(ProtocolFuzzTest, RandomBytesNeverCrashAnyDecoder) {
  // Fuzz-style sweep: random byte strings of varied lengths through every
  // decoder. The contract is "typed ProtocolError or a valid decode",
  // never a crash, hang, or huge allocation. Runs under the ASan leg of
  // CI, so an out-of-bounds read here fails loudly.
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(0, 96);
  for (int iter = 0; iter < 5000; ++iter) {
    std::vector<std::uint8_t> bytes(len(rng));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
    try {
      (void)DecodeFrameHeader(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DecodeQueryRequest(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DecodeResultIdsPayload(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DecodeQueryStatsPayload(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DecodeServerStatsPayload(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DecodeErrorPayload(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DecodeMutationPayload(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DecodeEraseRequest(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      double x, y;
      DecodeInsertRequest(bytes, &x, &y);
    } catch (const ProtocolError&) {
    }
  }
}

TEST(ProtocolFuzzTest, CorruptedValidFramesStayTyped) {
  // Start from a valid query frame and flip each byte through a few
  // values: decoders must stay in the typed-error-or-valid envelope.
  const auto payload = EncodeQueryRequest(
      {DynamicMethod::kVoronoi, true, false, 50.0,
       "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"});
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, Opcode::kQuery, payload);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (const std::uint8_t v : {0x00, 0x7F, 0xFF}) {
      auto mutated = frame;
      mutated[i] = v;
      try {
        const FrameHeader h = DecodeFrameHeader(mutated);
        if (h.opcode == Opcode::kQuery &&
            h.payload_len == mutated.size() - kFrameHeaderBytes) {
          (void)DecodeQueryRequest(
              {mutated.data() + kFrameHeaderBytes, h.payload_len});
        }
      } catch (const ProtocolError&) {
      }
    }
  }
}

}  // namespace
}  // namespace vaq
