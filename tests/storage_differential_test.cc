// The out-of-core PR's acceptance property: a database served from the
// mmap page file behind a deliberately tiny LRU cache must answer every
// query bit-identically to the in-memory backend — across all four
// methods, through the sharded scatter-gather path, and under dynamic
// churn with compactions — while the page counters obey
// `page_cache_hits + page_cache_misses == pages_touched` and show the
// genuine miss traffic the small cache forces. The page file stores the
// exact doubles of the resident arrays, so any divergence is a bug in the
// page/cache plumbing, not floating-point noise.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/dynamic_area_query.h"
#include "core/dynamic_point_database.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "shard/sharded_area_query.h"
#include "shard/sharded_database.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

/// A paged configuration whose cache (8 pages x 256 points) holds well
/// under the test datasets, so queries take real misses and evictions.
PointDatabase::Options PagedOptions(StorageBackend backend) {
  PointDatabase::Options options;
  options.storage.backend = backend;
  options.storage.cache_pages = 8;
  return options;
}

void ExpectPageInvariant(const QueryStats& s) {
  EXPECT_EQ(s.page_cache_hits + s.page_cache_misses, s.pages_touched);
}

TEST(StorageDifferentialTest, AllMethodsMatchInMemoryOracle) {
  const PointDistribution distributions[] = {PointDistribution::kUniform,
                                             PointDistribution::kClustered};
  const double query_sizes[] = {0.01, 0.05, 0.20};

  for (const StorageBackend backend :
       {StorageBackend::kMmap, StorageBackend::kMmapUring}) {
    for (const PointDistribution distribution : distributions) {
      Rng rng(2024);
      const std::vector<Point> points =
          GeneratePoints(4000, kUnit, distribution, &rng);
      const PointDatabase oracle(points);
      const PointDatabase paged(points, PagedOptions(backend));
      ASSERT_NE(paged.page_store(), nullptr);

      const TraditionalAreaQuery oracle_trad(&oracle), paged_trad(&paged);
      const VoronoiAreaQuery oracle_vaq(&oracle), paged_vaq(&paged);
      const GridSweepAreaQuery oracle_grid(&oracle), paged_grid(&paged);
      const BruteForceAreaQuery oracle_brute(&oracle), paged_brute(&paged);
      const struct {
        const AreaQuery* oracle_q;
        const AreaQuery* paged_q;
      } pairs[] = {{&oracle_vaq, &paged_vaq},
                   {&oracle_trad, &paged_trad},
                   {&oracle_grid, &paged_grid},
                   {&oracle_brute, &paged_brute}};

      QueryContext ctx;
      std::uint64_t paged_misses = 0;
      for (const double query_size : query_sizes) {
        PolygonSpec spec;
        spec.query_size_fraction = query_size;
        const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
        for (const auto& pair : pairs) {
          const std::vector<PointId> truth = pair.oracle_q->Run(area, ctx);
          const QueryStats oracle_stats = ctx.stats;
          EXPECT_EQ(oracle_stats.pages_touched, 0u);  // Memory backend.
          const std::vector<PointId> got = pair.paged_q->Run(area, ctx);
          EXPECT_EQ(got, truth)
              << "backend=" << StorageBackendName(backend)
              << " method=" << pair.paged_q->Name()
              << " query_size=" << query_size;
          ExpectPageInvariant(ctx.stats);
          paged_misses += ctx.stats.page_cache_misses;
          // The paged run must agree on every paper counter too — the
          // backend swaps the IO path, not the algorithm.
          EXPECT_EQ(ctx.stats.candidates, oracle_stats.candidates);
          EXPECT_EQ(ctx.stats.geometry_loads, oracle_stats.geometry_loads);
        }
      }
      // 4000 points across 16 pages vs an 8-page cache: the streams
      // cannot fit, so real page IO must have happened.
      EXPECT_GT(paged_misses, 0u)
          << "backend=" << StorageBackendName(backend);
    }
  }
}

TEST(StorageDifferentialTest, ShardedPagedMatchesInMemoryOracle) {
  Rng rng(3131);
  const std::vector<Point> points = GenerateUniformPoints(3000, kUnit, &rng);
  const PointDatabase oracle(points);
  const BruteForceAreaQuery oracle_brute(&oracle);

  for (const StorageBackend backend :
       {StorageBackend::kMmap, StorageBackend::kMmapUring}) {
    ShardedDatabase::Options options;
    options.num_shards = 4;
    options.shard.base.storage = PagedOptions(backend).storage;
    const ShardedDatabase sharded(points, options);

    QueryContext ctx;
    PolygonSpec spec;
    spec.query_size_fraction = 0.08;
    Rng query_rng(3132);
    for (int rep = 0; rep < 6; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &query_rng);
      std::vector<PointId> truth;
      for (const PointId internal : oracle_brute.Run(area, ctx)) {
        truth.push_back(oracle.OriginalId(internal));
      }
      std::sort(truth.begin(), truth.end());
      for (const DynamicMethod method :
           {DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
            DynamicMethod::kGridSweep, DynamicMethod::kBruteForce}) {
        const ShardedAreaQuery query(&sharded, method);
        EXPECT_EQ(query.Run(area, ctx), truth)
            << "backend=" << StorageBackendName(backend)
            << " method=" << query.Name();
        // The per-shard page counters must survive the scatter-gather
        // stats merge with the invariant intact.
        ExpectPageInvariant(ctx.stats);
      }
    }
  }
}

TEST(StorageDifferentialTest, ChurnOnPagedBackendMatchesRebuild) {
  // Every compaction rebuilds the base through the paged constructor (new
  // spill file, fresh cache), so the churn loop exercises the spill
  // path's full lifecycle, not just one construction.
  Rng rng(777);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  options.base.storage = PagedOptions(StorageBackend::kMmap).storage;
  DynamicPointDatabase db(GenerateUniformPoints(1500, kUnit, &rng), options);
  const DynamicAreaQuery methods[] = {
      DynamicAreaQuery(&db, DynamicMethod::kVoronoi),
      DynamicAreaQuery(&db, DynamicMethod::kTraditional),
      DynamicAreaQuery(&db, DynamicMethod::kGridSweep),
      DynamicAreaQuery(&db, DynamicMethod::kBruteForce),
  };
  PolygonSpec spec;
  spec.query_size_fraction = 0.08;

  std::vector<PointId> live;
  db.snapshot()->ForEachLive(
      [&](PointId id, const Point&) { live.push_back(id); });

  QueryContext ctx;
  const auto verify_against_rebuild = [&](const char* when) {
    std::vector<PointId> ids;
    std::vector<Point> pts;
    db.snapshot()->ForEachLive([&](PointId id, const Point& p) {
      ids.push_back(id);
      pts.push_back(p);
    });
    const PointDatabase rebuilt(pts);  // In-memory ground truth.
    const BruteForceAreaQuery brute(&rebuilt);
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    std::vector<PointId> truth;
    for (const PointId internal : brute.Run(area, nullptr)) {
      truth.push_back(ids[rebuilt.OriginalId(internal)]);
    }
    std::sort(truth.begin(), truth.end());
    for (const DynamicAreaQuery& method : methods) {
      EXPECT_EQ(method.Run(area, ctx), truth)
          << when << ", method: " << method.Name();
      ExpectPageInvariant(ctx.stats);
    }
  };

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 120; ++i) {
      const auto id = db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
      if (id.has_value()) live.push_back(*id);
    }
    for (int i = 0; i < 50 && !live.empty(); ++i) {
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      if (db.Erase(live[at])) {
        live[at] = live.back();
        live.pop_back();
      }
    }
    verify_against_rebuild("before compaction");
    db.Compact();
    verify_against_rebuild("after compaction");
  }
}

TEST(StorageDifferentialTest, InMemoryBackendStaysPageFree) {
  Rng rng(11);
  const PointDatabase db(GenerateUniformPoints(2000, kUnit, &rng));
  EXPECT_EQ(db.page_store(), nullptr);
  EXPECT_EQ(db.storage_backend(), StorageBackend::kInMemory);
  const VoronoiAreaQuery vaq(&db);
  QueryContext ctx;
  PolygonSpec spec;
  spec.query_size_fraction = 0.10;
  vaq.Run(GenerateQueryPolygon(spec, kUnit, &rng), ctx);
  EXPECT_EQ(ctx.stats.pages_touched, 0u);
  EXPECT_EQ(ctx.stats.page_cache_hits, 0u);
  EXPECT_EQ(ctx.stats.page_cache_misses, 0u);
}

TEST(StorageDifferentialTest, EmptyDatabaseSkipsSpill) {
  // No points -> nothing to page; the constructor must not create (or
  // fail on) a zero-page spill file.
  const PointDatabase db(std::vector<Point>{},
                         PagedOptions(StorageBackend::kMmap));
  EXPECT_EQ(db.page_store(), nullptr);
  EXPECT_EQ(db.storage_backend(), StorageBackend::kInMemory);
}

}  // namespace
}  // namespace vaq
