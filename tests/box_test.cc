#include "geometry/box.h"

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(BoxTest, DefaultIsEmpty) {
  const Box b;
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.Area(), 0.0);
  EXPECT_EQ(b.Margin(), 0.0);
}

TEST(BoxTest, BasicMetrics) {
  const Box b = Box::FromExtents(1, 2, 4, 6);
  EXPECT_FALSE(b.Empty());
  EXPECT_DOUBLE_EQ(b.Width(), 3.0);
  EXPECT_DOUBLE_EQ(b.Height(), 4.0);
  EXPECT_DOUBLE_EQ(b.Area(), 12.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 7.0);
  EXPECT_EQ(b.Center(), Point(2.5, 4.0));
}

TEST(BoxTest, ContainsPointBordersInclusive) {
  const Box b = Box::FromExtents(0, 0, 1, 1);
  EXPECT_TRUE(b.Contains(Point{0.5, 0.5}));
  EXPECT_TRUE(b.Contains(Point{0, 0}));
  EXPECT_TRUE(b.Contains(Point{1, 1}));
  EXPECT_TRUE(b.Contains(Point{0, 1}));
  EXPECT_FALSE(b.Contains(Point{1.0000001, 0.5}));
  EXPECT_FALSE(b.Contains(Point{0.5, -0.0000001}));
}

TEST(BoxTest, ContainsBox) {
  const Box outer = Box::FromExtents(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Box::FromExtents(1, 1, 9, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Box::FromExtents(1, 1, 11, 9)));
}

TEST(BoxTest, IntersectsIncludesTouching) {
  const Box a = Box::FromExtents(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(Box::FromExtents(1, 1, 2, 2)));  // Corner touch.
  EXPECT_TRUE(a.Intersects(Box::FromExtents(0.5, 0.5, 2, 2)));
  EXPECT_FALSE(a.Intersects(Box::FromExtents(1.01, 0, 2, 1)));
}

TEST(BoxTest, ExpandToInclude) {
  Box b;
  b.ExpandToInclude(Point{1, 2});
  EXPECT_EQ(b, Box(Point{1, 2}, Point{1, 2}));
  b.ExpandToInclude(Point{-1, 5});
  EXPECT_EQ(b, Box::FromExtents(-1, 2, 1, 5));
  b.ExpandToInclude(Box::FromExtents(0, 0, 3, 3));
  EXPECT_EQ(b, Box::FromExtents(-1, 0, 3, 5));
}

TEST(BoxTest, ExpandWithEmptyBoxIsIdentity) {
  Box b = Box::FromExtents(0, 0, 1, 1);
  b.ExpandToInclude(Box{});
  EXPECT_EQ(b, Box::FromExtents(0, 0, 1, 1));
}

TEST(BoxTest, UnionAndIntersection) {
  const Box a = Box::FromExtents(0, 0, 2, 2);
  const Box b = Box::FromExtents(1, 1, 3, 3);
  EXPECT_EQ(Box::Union(a, b), Box::FromExtents(0, 0, 3, 3));
  EXPECT_EQ(Box::Intersection(a, b), Box::FromExtents(1, 1, 2, 2));
  EXPECT_TRUE(
      Box::Intersection(a, Box::FromExtents(5, 5, 6, 6)).Empty());
}

TEST(BoxTest, SquaredDistanceToPoint) {
  const Box b = Box::FromExtents(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(b.SquaredDistanceTo(Point{0.5, 0.5}), 0.0);  // Inside.
  EXPECT_DOUBLE_EQ(b.SquaredDistanceTo(Point{2, 0.5}), 1.0);    // Right.
  EXPECT_DOUBLE_EQ(b.SquaredDistanceTo(Point{2, 2}), 2.0);      // Corner.
  EXPECT_DOUBLE_EQ(b.SquaredDistanceTo(Point{-3, 0.5}), 9.0);   // Left.
}

TEST(BoxTest, DegeneratePointBox) {
  const Box b(Point{2, 3});
  EXPECT_FALSE(b.Empty());
  EXPECT_EQ(b.Area(), 0.0);
  EXPECT_TRUE(b.Contains(Point{2, 3}));
  EXPECT_FALSE(b.Contains(Point{2, 3.001}));
}

}  // namespace
}  // namespace vaq
