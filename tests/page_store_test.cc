// The LRU page cache (storage/page_store.h) under scripted access
// sequences: eviction order, pin semantics, exact hit/miss counters, and
// the accounting invariant `page_cache_hits + page_cache_misses ==
// pages_touched` that the per-query stats plumbing relies on.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/page_format.h"
#include "storage/page_store.h"

namespace vaq {
namespace {

/// 512-byte pages -> 32 points per page. The fixture writes `kPages`
/// pages of deterministic coordinates (x = id, y = -id) and removes the
/// file on teardown.
class PageStoreTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kPageSize = 512;
  static constexpr std::size_t kPpp = 32;
  static constexpr std::size_t kPages = 16;

  void SetUp() override {
    const std::size_t count = kPages * kPpp;
    std::vector<double> xs(count), ys(count);
    for (std::size_t i = 0; i < count; ++i) {
      xs[i] = static_cast<double>(i);
      ys[i] = -static_cast<double>(i);
    }
    path_ = (std::filesystem::temp_directory_path() /
             ("vaq_page_store_test_" + std::to_string(::getpid()) + ".vpag"))
                .string();
    WritePageFile(path_, xs.data(), ys.data(), count, kPageSize);
  }

  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<PageStore> OpenCache(std::size_t cache_pages,
                                       PageMissMode mode =
                                           PageMissMode::kPread) {
    PageStore::Options options;
    options.cache_pages = cache_pages;
    options.miss_mode = mode;
    return PageStore::Open(path_, options);
  }

  /// First point id of `page`.
  static PointId IdOnPage(std::size_t page) {
    return static_cast<PointId>(page * kPpp);
  }

  std::string path_;
};

TEST_F(PageStoreTest, GatherReadsExactCoordinates) {
  for (const PageMissMode mode :
       {PageMissMode::kPread, PageMissMode::kMmapCopy}) {
    const auto store = OpenCache(4, mode);
    // A gather spanning pages, unaligned, with a same-page run.
    const std::vector<PointId> ids = {0, 1, 31, 32, 33, 100, 101, 511, 5};
    std::vector<double> xs(ids.size()), ys(ids.size());
    QueryStats stats;
    store->Gather(ids.data(), ids.size(), xs.data(), ys.data(), &stats);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(xs[j], static_cast<double>(ids[j]));
      EXPECT_EQ(ys[j], -static_cast<double>(ids[j]));
    }
    EXPECT_EQ(stats.page_cache_hits + stats.page_cache_misses,
              stats.pages_touched);
  }
}

TEST_F(PageStoreTest, ScriptedSequenceCountsExactly) {
  const auto store = OpenCache(2);
  QueryStats stats;
  // Pages: A=0 B=1 C=2. Cache holds 2.
  store->GetPoint(IdOnPage(0), &stats);  // A: miss (cold).
  store->GetPoint(IdOnPage(1), &stats);  // B: miss (cold).
  store->GetPoint(IdOnPage(0), &stats);  // A: hit. LRU order: A, B.
  store->GetPoint(IdOnPage(2), &stats);  // C: miss, evicts B (LRU).
  EXPECT_FALSE(store->Cached(1));
  EXPECT_TRUE(store->Cached(0));
  EXPECT_TRUE(store->Cached(2));
  store->GetPoint(IdOnPage(1), &stats);  // B: miss again, evicts A.
  EXPECT_FALSE(store->Cached(0));

  EXPECT_EQ(stats.pages_touched, 5u);
  EXPECT_EQ(stats.page_cache_hits, 1u);
  EXPECT_EQ(stats.page_cache_misses, 4u);
  const PageIoCounters c = store->counters();
  EXPECT_EQ(c.pages_touched, 5u);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.cache_misses, 4u);
  EXPECT_EQ(c.evictions, 2u);
}

TEST_F(PageStoreTest, EvictionFollowsLruOrder) {
  const auto store = OpenCache(3);
  store->GetPoint(IdOnPage(0), nullptr);
  store->GetPoint(IdOnPage(1), nullptr);
  store->GetPoint(IdOnPage(2), nullptr);
  // Touch 0 and 2; page 1 is now least recent.
  store->GetPoint(IdOnPage(0), nullptr);
  store->GetPoint(IdOnPage(2), nullptr);
  store->GetPoint(IdOnPage(3), nullptr);  // Evicts 1.
  EXPECT_TRUE(store->Cached(0));
  EXPECT_FALSE(store->Cached(1));
  EXPECT_TRUE(store->Cached(2));
  EXPECT_TRUE(store->Cached(3));
  store->GetPoint(IdOnPage(4), nullptr);  // Evicts 0 (next LRU).
  EXPECT_FALSE(store->Cached(0));
  EXPECT_TRUE(store->Cached(2));
}

TEST_F(PageStoreTest, PinnedPagesSurviveEviction) {
  const auto store = OpenCache(2);
  QueryStats stats;
  store->Pin(0, &stats);  // Load + pin page 0 (one touch, one miss).
  EXPECT_EQ(stats.page_cache_misses, 1u);
  // Stream every other page through the second frame: page 0 must never
  // be chosen for eviction while pinned.
  for (std::size_t p = 1; p < kPages; ++p) {
    store->GetPoint(IdOnPage(p), &stats);
    ASSERT_TRUE(store->Cached(0)) << "pinned page evicted at p=" << p;
  }
  store->Unpin(0);
  // Unpinned, 0 is the LRU frame (untouched since the pin) — the next
  // two distinct misses push it out.
  store->GetPoint(IdOnPage(5), &stats);
  store->GetPoint(IdOnPage(6), &stats);
  EXPECT_FALSE(store->Cached(0));
}

TEST_F(PageStoreTest, PinsNestAndUnpinValidates) {
  const auto store = OpenCache(2);
  store->Pin(0, nullptr);
  store->Pin(0, nullptr);  // Nested.
  store->Unpin(0);
  for (std::size_t p = 1; p < 6; ++p) store->GetPoint(IdOnPage(p), nullptr);
  EXPECT_TRUE(store->Cached(0));  // Still one pin outstanding.
  store->Unpin(0);
  EXPECT_THROW(store->Unpin(0), std::logic_error);   // Not pinned.
  EXPECT_THROW(store->Unpin(15), std::logic_error);  // Never cached.
}

TEST_F(PageStoreTest, AllFramesPinnedThrowsOnMiss) {
  const auto store = OpenCache(2);
  store->Pin(0, nullptr);
  store->Pin(1, nullptr);
  EXPECT_THROW(store->GetPoint(IdOnPage(2), nullptr), std::runtime_error);
  store->Unpin(1);
  EXPECT_NO_THROW(store->GetPoint(IdOnPage(2), nullptr));
}

TEST_F(PageStoreTest, GatherChargesOncePerPageRun) {
  const auto store = OpenCache(8);
  // 3 runs over 2 distinct pages: [page0 x3][page1 x2][page0 x1].
  const std::vector<PointId> ids = {0, 1, 2, IdOnPage(1), IdOnPage(1) + 1, 3};
  std::vector<double> xs(ids.size()), ys(ids.size());
  QueryStats stats;
  store->Gather(ids.data(), ids.size(), xs.data(), ys.data(), &stats);
  EXPECT_EQ(stats.pages_touched, 3u);       // One per run, not per id.
  EXPECT_EQ(stats.page_cache_misses, 2u);   // Two distinct pages cold.
  EXPECT_EQ(stats.page_cache_hits, 1u);     // The page-0 revisit.
}

TEST_F(PageStoreTest, HitMissInvariantHoldsUnderRandomTraffic) {
  const auto store = OpenCache(3);
  QueryStats stats;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  std::vector<PointId> ids(64);
  std::vector<double> xs(ids.size()), ys(ids.size());
  for (int round = 0; round < 50; ++round) {
    for (auto& id : ids) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      id = static_cast<PointId>((state >> 33) % (kPages * kPpp));
    }
    store->Gather(ids.data(), ids.size(), xs.data(), ys.data(), &stats);
    ASSERT_EQ(stats.page_cache_hits + stats.page_cache_misses,
              stats.pages_touched);
  }
  const PageIoCounters c = store->counters();
  EXPECT_EQ(c.cache_hits + c.cache_misses, c.pages_touched);
  EXPECT_EQ(c.pages_touched, stats.pages_touched);
}

TEST_F(PageStoreTest, PrefetchMakesNextGatherHitWithoutAccounting) {
  const auto store = OpenCache(8);
  std::vector<PointId> ids;
  for (std::size_t p = 0; p < 4; ++p) ids.push_back(IdOnPage(p));
  // A hint is not an access: it must not move the query-visible counters
  // (uring mode loads frames and counts them as prefetch_reads; madvise
  // mode only nudges the kernel).
  store->Prefetch(ids.data(), ids.size());
  const PageIoCounters after_hint = store->counters();
  EXPECT_EQ(after_hint.pages_touched, 0u);
  EXPECT_EQ(after_hint.cache_hits, 0u);
  EXPECT_EQ(after_hint.cache_misses, 0u);

  QueryStats stats;
  std::vector<double> xs(ids.size()), ys(ids.size());
  store->Gather(ids.data(), ids.size(), xs.data(), ys.data(), &stats);
  EXPECT_EQ(stats.pages_touched, 4u);
  EXPECT_EQ(stats.page_cache_hits + stats.page_cache_misses, 4u);
  if (store->uring_active()) {
    // The batched read loaded the frames, so the gather hits.
    EXPECT_EQ(stats.page_cache_hits, 4u);
    EXPECT_EQ(store->counters().prefetch_reads, 4u);
  }
}

TEST_F(PageStoreTest, UringModeMatchesPlainReads) {
  // Whether or not the kernel grants an io_uring (sandboxes often
  // refuse), the uring-requested store must return identical bytes.
  PageStore::Options options;
  options.cache_pages = 4;
  options.use_uring = true;
  const auto store = PageStore::Open(path_, options);
  std::vector<PointId> ids;
  for (std::size_t p = 0; p < kPages; ++p) ids.push_back(IdOnPage(p) + 7);
  store->Prefetch(ids.data(), ids.size());
  std::vector<double> xs(ids.size()), ys(ids.size());
  store->Gather(ids.data(), ids.size(), xs.data(), ys.data(), nullptr);
  for (std::size_t j = 0; j < ids.size(); ++j) {
    EXPECT_EQ(xs[j], static_cast<double>(ids[j]));
    EXPECT_EQ(ys[j], -static_cast<double>(ids[j]));
  }
}

TEST_F(PageStoreTest, ResetCountersClearsLifetimeTotals) {
  const auto store = OpenCache(2);
  store->GetPoint(IdOnPage(0), nullptr);
  store->GetPoint(IdOnPage(1), nullptr);
  EXPECT_GT(store->counters().pages_touched, 0u);
  store->ResetCounters();
  const PageIoCounters c = store->counters();
  EXPECT_EQ(c.pages_touched, 0u);
  EXPECT_EQ(c.cache_hits, 0u);
  EXPECT_EQ(c.cache_misses, 0u);
  EXPECT_EQ(c.evictions, 0u);
}

}  // namespace
}  // namespace vaq
