#include "geometry/exact_arithmetic.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(TwoSumTest, ExactForRepresentableSums) {
  double x, err;
  TwoSum(1.0, 2.0, &x, &err);
  EXPECT_EQ(x, 3.0);
  EXPECT_EQ(err, 0.0);
}

TEST(TwoSumTest, CapturesRoundoff) {
  double x, err;
  TwoSum(1.0, 1e-20, &x, &err);
  EXPECT_EQ(x, 1.0);        // Rounded.
  EXPECT_EQ(err, 1e-20);    // Roundoff captured exactly.
}

TEST(TwoDiffTest, CapturesRoundoff) {
  double x, err;
  TwoDiff(1.0, 1e-20, &x, &err);
  EXPECT_EQ(x, 1.0);
  EXPECT_EQ(err, -1e-20);
}

TEST(TwoProductTest, ExactSplit) {
  double x, err;
  const double a = 1.0 + std::pow(2.0, -30);
  const double b = 1.0 + std::pow(2.0, -30);
  TwoProduct(a, b, &x, &err);
  // a*b = 1 + 2^-29 + 2^-60; the 2^-60 term is the roundoff.
  EXPECT_EQ(x, 1.0 + std::pow(2.0, -29));
  EXPECT_EQ(err, std::pow(2.0, -60));
}

TEST(ExpansionTest, SingleValue) {
  const Expansion<8> e(3.5);
  EXPECT_EQ(e.size(), 1u);
  EXPECT_EQ(e.Estimate(), 3.5);
  EXPECT_EQ(e.Sign(), 1);
}

TEST(ExpansionTest, SignOfNegativeAndZero) {
  EXPECT_EQ(Expansion<8>(-2.0).Sign(), -1);
  EXPECT_EQ(Expansion<8>(0.0).Sign(), 0);
  EXPECT_EQ(Expansion<8>().Sign(), 0);
}

TEST(ExpansionTest, AddCancelsExactly) {
  const Expansion<16> a(1.0);
  const Expansion<16> b(-1.0);
  EXPECT_EQ(a.Add(b).Sign(), 0);
}

TEST(ExpansionTest, AddKeepsTinyResidue) {
  // (1 + eps_small) - 1 must be exactly eps_small, which plain doubles
  // cannot represent through the intermediate sum.
  const double tiny = 1e-30;
  const Expansion<16> one(1.0);
  const Expansion<16> sum = one.Add(Expansion<16>(tiny));
  const Expansion<16> diff = sum.Subtract(one);
  EXPECT_EQ(diff.Estimate(), tiny);
  EXPECT_EQ(diff.Sign(), 1);
}

TEST(ExpansionTest, ScaleIsExact) {
  const double tiny = 1e-30;
  const Expansion<32> e = Expansion<32>(1.0).Add(Expansion<32>(tiny));
  const Expansion<32> scaled = e.Scale(3.0);
  const Expansion<32> back = scaled.Subtract(Expansion<32>(3.0));
  EXPECT_EQ(back.Estimate(), 3.0 * tiny);
}

TEST(ExpansionTest, MultiplyMatchesKnownProduct) {
  const Expansion<64> a = ExactDiff<64>(1.0 + std::pow(2.0, -40), 1.0);
  // a == 2^-40 exactly.
  const Expansion<64> sq = a.Multiply(a);
  EXPECT_EQ(sq.Estimate(), std::pow(2.0, -80));
  EXPECT_EQ(sq.Sign(), 1);
}

TEST(ExpansionTest, ExactDiffCatchesCancellation) {
  const double a = 1e16;
  const double b = 1e16 - 2.0;  // Representable.
  const Expansion<8> d = ExactDiff<8>(a, b);
  EXPECT_EQ(d.Estimate(), 2.0);
}

TEST(ExpansionTest, RandomizedSumMatchesLongDouble) {
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    const double a = dist(rng);
    const double b = dist(rng) * 1e-17;
    const double c = dist(rng) * 1e-9;
    const Expansion<64> sum =
        Expansion<64>(a).Add(Expansion<64>(b)).Add(Expansion<64>(c));
    const long double expect = static_cast<long double>(a) +
                               static_cast<long double>(b) +
                               static_cast<long double>(c);
    EXPECT_NEAR(static_cast<double>(sum.Estimate()),
                static_cast<double>(expect), 1e-18);
    if (expect > 0) {
      EXPECT_EQ(sum.Sign(), 1);
    }
    if (expect < 0) {
      EXPECT_EQ(sum.Sign(), -1);
    }
  }
}

TEST(ExpansionTest, NegateFlipsSign) {
  const Expansion<16> e =
      Expansion<16>(2.0).Add(Expansion<16>(1e-25));
  EXPECT_EQ(e.Sign(), 1);
  EXPECT_EQ(e.Negate().Sign(), -1);
  EXPECT_EQ(e.Add(e.Negate()).Sign(), 0);
}

TEST(ExpansionTest, ScaleByZeroIsZero) {
  const Expansion<16> e(5.0);
  EXPECT_EQ(e.Scale(0.0).Sign(), 0);
}

}  // namespace
}  // namespace vaq
