// The on-disk page format (storage/page_format.h): write/read roundtrip
// exactness, and the hardened reader's malformed-file corpus — the file
// is untrusted input (another machine, another version, a bad disk), so
// every corruption class must be rejected with its typed PageFileError
// kind instead of being read into garbage coordinates or a crash.

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/page_format.h"
#include "storage/page_store.h"

namespace vaq {
namespace {

class PageFormatTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("vaq_page_format_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    paths_.push_back((dir / name).string());
    return paths_.back();
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::filesystem::remove(p);
  }

  /// Writes a well-formed file of `count` distinct coordinates.
  std::string WriteValid(std::size_t count, std::uint32_t page_size = 512) {
    std::vector<double> xs(count), ys(count);
    for (std::size_t i = 0; i < count; ++i) {
      xs[i] = 0.25 * static_cast<double>(i) + 0.125;
      ys[i] = -1.5 * static_cast<double>(i);
    }
    const std::string path = TempPath("valid.vpag");
    WritePageFile(path, xs.data(), ys.data(), count, page_size);
    return path;
  }

  /// Loads the whole file, applies `mutate`, writes it back.
  void Corrupt(const std::string& path,
               const std::function<void(std::vector<char>&)>& mutate) {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    mutate(bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  PageFileError::Kind OpenKind(const std::string& path,
                               std::uint32_t required_page_size = 0) {
    PageStore::Options options;
    options.required_page_size_bytes = required_page_size;
    try {
      PageStore::Open(path, options);
    } catch (const PageFileError& e) {
      return e.kind();
    }
    ADD_FAILURE() << "expected PageFileError for " << path;
    return PageFileError::Kind::kIo;
  }

 private:
  std::vector<std::string> paths_;
};

TEST_F(PageFormatTest, RoundtripIsExact) {
  const std::size_t count = 1000;  // 512 B pages -> 32 pts/page, 32 pages.
  const std::string path = WriteValid(count);

  const PageFileHeader header = ReadPageFileHeader(path);
  EXPECT_EQ(header.point_count, count);
  EXPECT_EQ(header.page_size_bytes, 512u);
  EXPECT_EQ(header.PointsPerPage(), 32u);
  EXPECT_EQ(header.NumPages(), 32u);  // ceil(1000/32) = 32, last padded.
  EXPECT_EQ(std::filesystem::file_size(path),
            kPageFileHeaderBytes + header.PayloadBytes());

  PageStore::Options options;
  options.cache_pages = 4;
  const auto store = PageStore::Open(path, options);
  // Every coordinate, gathered through the cache (including the padded
  // last page), must be the exact double that was written.
  std::vector<PointId> ids(count);
  std::vector<double> xs(count), ys(count);
  for (std::size_t i = 0; i < count; ++i) ids[i] = static_cast<PointId>(i);
  store->Gather(ids.data(), count, xs.data(), ys.data(), nullptr);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(xs[i], 0.25 * static_cast<double>(i) + 0.125) << "i=" << i;
    ASSERT_EQ(ys[i], -1.5 * static_cast<double>(i)) << "i=" << i;
  }
}

TEST_F(PageFormatTest, ZeroPointFileRoundtrips) {
  const std::string path = WriteValid(0);
  const PageFileHeader header = ReadPageFileHeader(path);
  EXPECT_EQ(header.point_count, 0u);
  EXPECT_EQ(header.NumPages(), 0u);
  PageStore::Options options;
  EXPECT_EQ(PageStore::Open(path, options)->point_count(), 0u);
}

TEST_F(PageFormatTest, WriterRejectsBadPageSizes) {
  std::vector<double> xy{1.0};
  for (const std::uint32_t bad : {0u, 100u, 255u, 768u, (1u << 20) + 1}) {
    EXPECT_THROW(
        WritePageFile(TempPath("bad_size.vpag"), xy.data(), xy.data(), 1, bad),
        std::invalid_argument)
        << "page_size=" << bad;
  }
}

TEST_F(PageFormatTest, MissingFileIsIoError) {
  EXPECT_EQ(OpenKind(TempPath("does_not_exist.vpag")),
            PageFileError::Kind::kIo);
}

TEST_F(PageFormatTest, TruncatedHeaderRejected) {
  const std::string path = WriteValid(100);
  Corrupt(path, [](std::vector<char>& b) { b.resize(17); });
  EXPECT_EQ(OpenKind(path), PageFileError::Kind::kTruncated);
}

TEST_F(PageFormatTest, TruncatedPayloadRejected) {
  const std::string path = WriteValid(100);
  // Drop the last page's tail: the header's count now demands more
  // payload than the file holds.
  Corrupt(path, [](std::vector<char>& b) { b.resize(b.size() - 100); });
  EXPECT_EQ(OpenKind(path), PageFileError::Kind::kTruncated);
}

TEST_F(PageFormatTest, OverstatedCountRejectedWithoutOverflow) {
  const std::string path = WriteValid(100);
  // An adversarial count near 2^64: NumPages()-style arithmetic on it
  // would overflow, so the reader must bound the count against the
  // actual payload *in the count domain* and reject.
  Corrupt(path, [](std::vector<char>& b) {
    const std::uint64_t huge = ~std::uint64_t{0} - 7;
    std::memcpy(b.data() + 16, &huge, 8);
  });
  EXPECT_EQ(OpenKind(path), PageFileError::Kind::kTruncated);
}

TEST_F(PageFormatTest, BadMagicRejected) {
  const std::string path = WriteValid(100);
  Corrupt(path, [](std::vector<char>& b) { b[0] = 'X'; });
  EXPECT_EQ(OpenKind(path), PageFileError::Kind::kBadMagic);
}

TEST_F(PageFormatTest, FutureVersionRejected) {
  const std::string path = WriteValid(100);
  Corrupt(path, [](std::vector<char>& b) { b[4] = 99; });
  EXPECT_EQ(OpenKind(path), PageFileError::Kind::kBadVersion);
}

TEST_F(PageFormatTest, InvalidStoredPageSizeRejected) {
  const std::string path = WriteValid(100);
  for (const std::uint32_t bad : {0u, 3u, 513u, 2u << 20}) {
    Corrupt(path, [bad](std::vector<char>& b) {
      std::memcpy(b.data() + 8, &bad, 4);
    });
    EXPECT_EQ(OpenKind(path), PageFileError::Kind::kBadPageSize)
        << "stored page_size=" << bad;
  }
}

TEST_F(PageFormatTest, PageSizeMismatchRejected) {
  // The file is perfectly valid — it just doesn't match the page size the
  // caller's cache geometry was built for.
  const std::string path = WriteValid(100, /*page_size=*/512);
  EXPECT_EQ(OpenKind(path, /*required_page_size=*/4096),
            PageFileError::Kind::kPageSizeMismatch);
}

TEST_F(PageFormatTest, FlippedPayloadByteFailsChecksum) {
  const std::string path = WriteValid(100);
  Corrupt(path, [](std::vector<char>& b) {
    b[kPageFileHeaderBytes + 1000] ^= 0x01;  // One bit, mid-payload.
  });
  EXPECT_EQ(OpenKind(path), PageFileError::Kind::kChecksumMismatch);
  // Opting out of verification accepts the file (the caller's choice —
  // e.g. the spill path that wrote it microseconds earlier).
  PageStore::Options no_verify;
  no_verify.verify_checksum = false;
  EXPECT_NO_THROW(PageStore::Open(path, no_verify));
}

TEST_F(PageFormatTest, ErrorCarriesPathAndKind) {
  const std::string path = WriteValid(10);
  Corrupt(path, [](std::vector<char>& b) { b[0] = '?'; });
  try {
    ReadPageFileHeader(path);
    FAIL() << "expected PageFileError";
  } catch (const PageFileError& e) {
    EXPECT_EQ(e.kind(), PageFileError::Kind::kBadMagic);
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST_F(PageFormatTest, ChecksumIsStreamable) {
  // The writer accumulates the checksum page by page; feeding the same
  // bytes in arbitrary chunk sizes must give the same digest.
  std::vector<char> bytes(10000);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(i * 37 + 11);
  }
  const std::uint64_t whole = Fnv1a64(bytes.data(), bytes.size());
  std::uint64_t chunked = Fnv1a64(bytes.data(), 0);
  for (std::size_t at = 0; at < bytes.size();) {
    const std::size_t n = std::min<std::size_t>(997, bytes.size() - at);
    chunked = Fnv1a64(bytes.data() + at, n, chunked);
    at += n;
  }
  EXPECT_EQ(whole, chunked);
}

}  // namespace
}  // namespace vaq
