#include "core/point_database.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(PointDatabaseTest, BuildsBothStructures) {
  Rng rng(11);
  PointDatabase db(GenerateUniformPoints(1000, kUnit, &rng));
  EXPECT_EQ(db.size(), 1000u);
  EXPECT_EQ(db.rtree().size(), 1000u);
  EXPECT_EQ(db.delaunay().num_points(), 1000u);
  EXPECT_GT(db.delaunay().num_triangles(), 1500u);  // ~2n for uniform.
  EXPECT_TRUE(kUnit.Contains(db.bounds()));
}

TEST(PointDatabaseTest, FetchPointChargesStats) {
  PointDatabase db(std::vector<Point>{{0.1, 0.1}, {0.9, 0.9}});
  QueryStats stats;
  EXPECT_EQ(db.FetchPoint(0, &stats), Point(0.1, 0.1));
  EXPECT_EQ(db.FetchPoint(1, &stats), Point(0.9, 0.9));
  EXPECT_EQ(stats.geometry_loads, 2u);
  // Null stats allowed.
  EXPECT_EQ(db.FetchPoint(0, nullptr), Point(0.1, 0.1));
}

TEST(PointDatabaseTest, SimulatedFetchLatencySlowsLoads) {
  Rng rng(12);
  PointDatabase db(GenerateUniformPoints(100, kUnit, &rng));
  const auto timed_loads = [&](int count) {
    const auto t0 = std::chrono::steady_clock::now();
    QueryStats stats;
    for (int i = 0; i < count; ++i) db.FetchPoint(i % 100, &stats);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  db.set_simulated_fetch_ns(0);
  const double fast = timed_loads(1000);
  db.set_simulated_fetch_ns(10000);  // 10us per load -> >= 10ms total.
  const double slow = timed_loads(1000);
  EXPECT_GE(slow, 9.0);
  EXPECT_LT(fast, slow);
}

TEST(PointDatabaseTest, VoronoiDiagramLazyButConsistent) {
  Rng rng(13);
  const auto points = GenerateUniformPoints(200, kUnit, &rng);
  PointDatabase db(points);
  const VoronoiDiagram& vd = db.voronoi();
  EXPECT_EQ(vd.size(), 200u);
  // Every generator sits in its own cell (ids are internal, so the
  // generator of cell v is the v-th *stored* point).
  for (PointId v = 0; v < vd.size(); ++v) {
    EXPECT_TRUE(vd.CellContains(v, db.points()[v]));
  }
  // Same object on second access.
  EXPECT_EQ(&db.voronoi(), &vd);
}

TEST(PointDatabaseTest, CustomRTreeFanout) {
  Rng rng(14);
  PointDatabase::Options options;
  options.rtree_max_entries = 8;
  options.rtree_min_entries = 3;
  PointDatabase db(GenerateUniformPoints(2000, kUnit, &rng), options);
  // Smaller fanout -> taller tree than the default-16 tree would be.
  EXPECT_GE(db.rtree().Height(), 4);
}

TEST(QueryStatsTest, AccumulateAndRedundancy) {
  QueryStats a;
  a.candidates = 10;
  a.candidate_hits = 7;
  a.results = 7;
  a.elapsed_ms = 1.5;
  QueryStats b;
  b.candidates = 5;
  b.candidate_hits = 5;
  b.results = 5;
  b.elapsed_ms = 0.5;
  a += b;
  EXPECT_EQ(a.candidates, 15u);
  EXPECT_EQ(a.results, 12u);
  EXPECT_EQ(a.RedundantValidations(), 3u);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, 2.0);
  a.Reset();
  EXPECT_EQ(a.candidates, 0u);
}

// -- Pairwise-distinct enforcement ------------------------------------------

TEST(PointDatabaseTest, DuplicatePointsThrowWithInputPositions) {
  // The documented precondition is enforced at the construction boundary,
  // and the error speaks the caller's frame of reference: positions in the
  // input vector, before the Hilbert relabelling.
  const std::vector<Point> points{
      {0.1, 0.1}, {0.5, 0.5}, {0.9, 0.2}, {0.5, 0.5}, {0.3, 0.8}};
  try {
    PointDatabase db(points);
    FAIL() << "duplicate input must throw";
  } catch (const DuplicatePointError& e) {
    EXPECT_EQ(e.point(), Point(0.5, 0.5));
    EXPECT_EQ(e.first_index(), 1u);
    EXPECT_EQ(e.second_index(), 3u);
    EXPECT_NE(std::string(e.what()).find("0.5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pairwise distinct"),
              std::string::npos);
  }
}

TEST(PointDatabaseTest, DuplicateDetectionSeesNonAdjacentPairs) {
  // Duplicates split by many other points (and by the Hilbert reorder)
  // must still be caught — the check is global, not neighbour-only.
  Rng rng(77);
  auto points = GenerateUniformPoints(2000, kUnit, &rng);
  points.push_back(points[13]);
  EXPECT_THROW(PointDatabase db(std::move(points)), DuplicatePointError);
}

TEST(PointDatabaseTest, NonFiniteCoordinatesThrow) {
  // NaN would break the strict weak ordering of the distinctness sort
  // (and NaN != NaN would admit duplicates), so non-finite input is
  // rejected before anything else runs.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(
      PointDatabase db(std::vector<Point>{{0.1, 0.1}, {nan, 0.5}}),
      std::invalid_argument);
  EXPECT_THROW(
      PointDatabase db(std::vector<Point>{{0.1, 0.1}, {0.5, inf}}),
      std::invalid_argument);
}

TEST(PointDatabaseTest, DistinctPointsDoNotThrow) {
  // Near-duplicates (distinct in the last ulp) are legal input.
  const double x = 0.5;
  const double next = std::nextafter(x, 1.0);
  EXPECT_NO_THROW(PointDatabase db(
      std::vector<Point>{{x, 0.5}, {next, 0.5}, {x, next}, {0.1, 0.9}}));
}

}  // namespace
}  // namespace vaq
