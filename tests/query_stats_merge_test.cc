#include "core/query_stats.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "core/method.h"

namespace vaq {
namespace {

// The merge contract's checksum, re-asserted where a reader will look for
// it: every QueryStats field is one 8-byte word, so a new field changes
// sizeof and fails this build (and MergeFrom's own static_assert) until
// both the merge and kFieldCount learn about it.
static_assert(sizeof(QueryStats) ==
                  QueryStats::kFieldCount * sizeof(std::uint64_t),
              "QueryStats field count drifted from kFieldCount");

QueryStats Filled(std::uint64_t base) {
  QueryStats s;
  s.candidates = base + 1;
  s.candidate_hits = base;
  s.results = base + 2;
  s.geometry_loads = base + 3;
  s.index_node_accesses = base + 4;
  s.neighbor_expansions = base + 5;
  s.segment_tests = base + 6;
  s.bulk_accepted = base + 7;
  s.visited_rejected = 1;  // Keeps candidates == hits + rejected.
  s.delta_candidates = base + 8;
  s.shards_hit = base + 9;
  s.shards_pruned = base + 10;
  s.pages_touched = base + 11;
  s.page_cache_hits = base + 12;
  s.page_cache_misses = base + 13;
  s.io_retries = base + 14;
  s.pages_quarantined = base + 15;
  s.shards_failed = base + 16;
  s.result_cache_hits = base + 17;
  s.result_cache_misses = base + 18;
  s.elapsed_ms = static_cast<double>(base) + 0.5;
  return s;
}

TEST(QueryStatsMergeTest, AdditiveFieldsSum) {
  QueryStats a = Filled(10);
  const QueryStats b = Filled(100);
  a.MergeFrom(b);
  EXPECT_EQ(a.candidates, 11u + 101u);
  EXPECT_EQ(a.candidate_hits, 10u + 100u);
  EXPECT_EQ(a.results, 12u + 102u);
  EXPECT_EQ(a.geometry_loads, 13u + 103u);
  EXPECT_EQ(a.index_node_accesses, 14u + 104u);
  EXPECT_EQ(a.neighbor_expansions, 15u + 105u);
  EXPECT_EQ(a.segment_tests, 16u + 106u);
  EXPECT_EQ(a.bulk_accepted, 17u + 107u);
  EXPECT_EQ(a.visited_rejected, 2u);
  EXPECT_EQ(a.delta_candidates, 18u + 108u);
  EXPECT_EQ(a.shards_hit, 19u + 109u);
  EXPECT_EQ(a.shards_pruned, 20u + 110u);
  EXPECT_EQ(a.pages_touched, 21u + 111u);
  EXPECT_EQ(a.page_cache_hits, 22u + 112u);
  EXPECT_EQ(a.page_cache_misses, 23u + 113u);
  EXPECT_EQ(a.io_retries, 24u + 114u);
  EXPECT_EQ(a.pages_quarantined, 25u + 115u);
  EXPECT_EQ(a.shards_failed, 26u + 116u);
  EXPECT_EQ(a.result_cache_hits, 27u + 117u);
  EXPECT_EQ(a.result_cache_misses, 28u + 118u);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, 10.5 + 100.5);
}

TEST(QueryStatsMergeTest, MaskFieldsOrInsteadOfAdding) {
  QueryStats a;
  a.kernel_kind = 0b0101;
  a.degraded = 1;
  a.plan_method = MethodBit(DynamicMethod::kTraditional);
  a.plan_reason = 1u << 0;
  QueryStats b;
  b.kernel_kind = 0b0110;
  b.degraded = 1;  // Adding would yield 2 and break the 0/1 flag contract.
  b.plan_method = MethodBit(DynamicMethod::kVoronoi);
  b.plan_reason = 1u << 4;
  a.MergeFrom(b);
  EXPECT_EQ(a.kernel_kind, 0b0111u);
  EXPECT_EQ(a.degraded, 1u);
  EXPECT_EQ(a.plan_method, MethodBit(DynamicMethod::kTraditional) |
                               MethodBit(DynamicMethod::kVoronoi));
  EXPECT_EQ(a.plan_reason, (1u << 0) | (1u << 4));
}

TEST(QueryStatsMergeTest, PreservesEpilogueInvariant) {
  // candidates == candidate_hits + visited_rejected survives merging when
  // both operands satisfy it — the property engine aggregation and the
  // sharded gather rely on.
  QueryStats a, b;
  a.candidates = 10;
  a.candidate_hits = 7;
  a.visited_rejected = 3;
  b.candidates = 20;
  b.candidate_hits = 16;
  b.visited_rejected = 4;
  a.MergeFrom(b);
  EXPECT_EQ(a.candidates, a.candidate_hits + a.visited_rejected);
  EXPECT_EQ(a.RedundantValidations(), 7u);
}

TEST(QueryStatsMergeTest, PlusEqualsIsTheSameMerge) {
  QueryStats via_merge = Filled(10);
  QueryStats via_plus = Filled(10);
  const QueryStats other = Filled(33);
  via_merge.MergeFrom(other);
  via_plus += other;
  EXPECT_EQ(via_merge.candidates, via_plus.candidates);
  EXPECT_EQ(via_merge.result_cache_misses, via_plus.result_cache_misses);
  EXPECT_DOUBLE_EQ(via_merge.elapsed_ms, via_plus.elapsed_ms);
}

TEST(QueryStatsMergeTest, MergeIntoDefaultCopiesAndResetClears) {
  const QueryStats src = Filled(5);
  QueryStats dst;
  dst.MergeFrom(src);
  EXPECT_EQ(dst.candidates, src.candidates);
  EXPECT_EQ(dst.result_cache_hits, src.result_cache_hits);
  dst.Reset();
  EXPECT_EQ(dst.candidates, 0u);
  EXPECT_EQ(dst.plan_method, 0u);
  EXPECT_DOUBLE_EQ(dst.elapsed_ms, 0.0);
}

}  // namespace
}  // namespace vaq
