// Parameterised equivalence sweeps: on the paper's workload (random
// star-shaped decagons over uniform/clustered/grid points), the traditional
// and Voronoi-based area queries must return exactly the brute-force result
// set, across data sizes, query sizes and seeds. This is the end-to-end
// correctness property behind every number in EXPERIMENTS.md.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

using Param = std::tuple<PointDistribution, std::size_t /*n*/,
                         double /*query size*/>;

class AreaQueryPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [distribution, n, query_size] = GetParam();
    Rng rng(555 + n);
    db_ = std::make_unique<PointDatabase>(
        GeneratePoints(n, kUnit, distribution, &rng));
    spec_.query_size_fraction = query_size;
  }

  std::unique_ptr<PointDatabase> db_;
  PolygonSpec spec_;
};

TEST_P(AreaQueryPropertyTest, BothMethodsMatchBruteForce) {
  const TraditionalAreaQuery trad(db_.get());
  const VoronoiAreaQuery vaq(db_.get());
  const BruteForceAreaQuery brute(db_.get());
  Rng qrng(4242);
  for (int rep = 0; rep < 25; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec_, kUnit, &qrng);
    ASSERT_TRUE(area.IsSimple());
    const auto truth = brute.Run(area, nullptr);
    EXPECT_EQ(trad.Run(area, nullptr), truth) << "rep " << rep;
    EXPECT_EQ(vaq.Run(area, nullptr), truth) << "rep " << rep;
  }
}

TEST_P(AreaQueryPropertyTest, CellOverlapExpansionMatchesToo) {
  VoronoiAreaQuery::Options options;
  options.expansion = VoronoiAreaQuery::ExpansionRule::kCellOverlap;
  const VoronoiAreaQuery vaq(db_.get(), options);
  const BruteForceAreaQuery brute(db_.get());
  Rng qrng(777);
  for (int rep = 0; rep < 10; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec_, kUnit, &qrng);
    EXPECT_EQ(vaq.Run(area, nullptr), brute.Run(area, nullptr))
        << "rep " << rep;
  }
}

TEST_P(AreaQueryPropertyTest, CandidateCountBounds) {
  // Structural bounds that must hold for every query:
  //  * traditional candidates == points in MBR(A) >= results;
  //  * Voronoi candidates >= results and <= traditional candidates +
  //    boundary shell (the shell can exceed the MBR population only on
  //    tiny queries, so we assert the paper's regime on larger ones).
  const TraditionalAreaQuery trad(db_.get());
  const VoronoiAreaQuery vaq(db_.get());
  Rng qrng(31337);
  for (int rep = 0; rep < 15; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec_, kUnit, &qrng);
    QueryStats ts, vs;
    trad.Run(area, &ts);
    vaq.Run(area, &vs);
    EXPECT_GE(ts.candidates, ts.results);
    EXPECT_GE(vs.candidates, vs.results);
    EXPECT_EQ(ts.results, vs.results);
    if (ts.results > 200) {
      EXPECT_LT(vs.candidates, ts.candidates)
          << "Voronoi candidates should beat the window filter";
    }
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto [distribution, n, query_size] = info.param;
  return std::string(PointDistributionName(distribution)) + "_n" +
         std::to_string(n) + "_q" +
         std::to_string(static_cast<int>(query_size * 1000));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AreaQueryPropertyTest,
    ::testing::Combine(::testing::Values(PointDistribution::kUniform,
                                         PointDistribution::kClustered,
                                         PointDistribution::kGrid),
                       ::testing::Values<std::size_t>(300, 3000),
                       ::testing::Values(0.01, 0.08, 0.32)),
    ParamName);

}  // namespace
}  // namespace vaq
