#include "geometry/convex_hull.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "geometry/predicates.h"

namespace vaq {
namespace {

TEST(ConvexHullTest, Triangle) {
  const auto hull = ConvexHull({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  const auto hull =
      ConvexHull({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.7}});
  EXPECT_EQ(hull.size(), 4u);
  // All four corners present.
  for (const Point corner : {Point{0, 0}, Point{1, 0}, Point{1, 1}, Point{0, 1}}) {
    EXPECT_NE(std::find(hull.begin(), hull.end(), corner), hull.end());
  }
}

TEST(ConvexHullTest, CollinearPointsDropped) {
  const auto hull = ConvexHull({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {1, 1}});
  // (1,0) is on edge (0,0)-(2,0); (1,1) is on edge (0,0)-(2,2).
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, DegenerateInputs) {
  EXPECT_TRUE(ConvexHull({}).empty());
  EXPECT_TRUE(ConvexHull({{1, 1}}).empty());
  EXPECT_TRUE(ConvexHull({{1, 1}, {2, 2}}).empty());
  EXPECT_TRUE(ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).empty());  // Line.
  EXPECT_TRUE(ConvexHull({{1, 1}, {1, 1}, {1, 1}}).empty());  // Duplicates.
}

TEST(ConvexHullTest, OutputIsCcwAndConvex) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) points.push_back({dist(rng), dist(rng)});
  const auto hull = ConvexHull(points);
  ASSERT_GE(hull.size(), 3u);
  const std::size_t h = hull.size();
  for (std::size_t i = 0; i < h; ++i) {
    // Strict left turns everywhere: convex, CCW, no collinear triples.
    EXPECT_EQ(
        Orient2DSign(hull[i], hull[(i + 1) % h], hull[(i + 2) % h]), 1);
  }
}

TEST(ConvexHullTest, ContainsAllInputPoints) {
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) points.push_back({dist(rng), dist(rng)});
  const Polygon hull = ConvexHullPolygon(points);
  for (const Point& p : points) {
    EXPECT_TRUE(hull.Contains(p));
  }
}

TEST(ConvexHullTest, IdempotentOnHull) {
  const std::vector<Point> square{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const auto hull1 = ConvexHull(square);
  const auto hull2 = ConvexHull(hull1);
  EXPECT_EQ(hull1.size(), hull2.size());
}

}  // namespace
}  // namespace vaq
