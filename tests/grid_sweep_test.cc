// Tests of Polygon::ContainsBox / IntersectsBox and the grid-sweep area
// query built on them.

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

Polygon LShape() {
  return Polygon({{0, 0}, {1, 0}, {1, 0.5}, {0.5, 0.5}, {0.5, 1}, {0, 1}});
}

TEST(PolygonBoxTest, ContainsBoxBasics) {
  const Polygon l = LShape();
  EXPECT_TRUE(l.ContainsBox(Box::FromExtents(0.1, 0.1, 0.4, 0.4)));
  EXPECT_TRUE(l.ContainsBox(Box::FromExtents(0.6, 0.1, 0.9, 0.4)));
  // Box spanning the notch: corners inside, middle outside.
  EXPECT_FALSE(l.ContainsBox(Box::FromExtents(0.1, 0.1, 0.9, 0.9)));
  // Box inside the notch.
  EXPECT_FALSE(l.ContainsBox(Box::FromExtents(0.6, 0.6, 0.9, 0.9)));
  // Box sticking out of the polygon's MBR.
  EXPECT_FALSE(l.ContainsBox(Box::FromExtents(0.4, 0.4, 1.2, 0.45)));
}

TEST(PolygonBoxTest, ContainsBoxIsConservativeOnBoundaryTouch) {
  const Polygon square = Polygon::FromBox(Box::FromExtents(0, 0, 1, 1));
  // Boxes touching the polygon boundary may conservatively report "not
  // contained" (the grid-sweep then validates the cell per point, which is
  // always safe). Strictly interior boxes must report contained.
  EXPECT_TRUE(square.ContainsBox(Box::FromExtents(0.01, 0.01, 0.99, 0.99)));
  // Whatever the answer for touching boxes, it must never contradict
  // point containment of the corners.
  if (square.ContainsBox(Box::FromExtents(0.5, 0.5, 1.0, 1.0))) {
    EXPECT_TRUE(square.Contains({1.0, 1.0}));
  }
}

TEST(PolygonBoxTest, IntersectsBoxBasics) {
  const Polygon l = LShape();
  EXPECT_TRUE(l.IntersectsBox(Box::FromExtents(0.1, 0.1, 0.2, 0.2)));
  // Notch box: inside the MBR, outside the polygon.
  EXPECT_FALSE(l.IntersectsBox(Box::FromExtents(0.6, 0.6, 0.9, 0.9)));
  // Far away.
  EXPECT_FALSE(l.IntersectsBox(Box::FromExtents(2, 2, 3, 3)));
  // Straddling an edge.
  EXPECT_TRUE(l.IntersectsBox(Box::FromExtents(0.4, 0.4, 0.6, 0.6)));
  // Polygon entirely inside the box.
  EXPECT_TRUE(l.IntersectsBox(Box::FromExtents(-1, -1, 2, 2)));
}

TEST(PolygonBoxTest, RandomizedAgainstSampling) {
  // Cross-check IntersectsBox/ContainsBox against dense point sampling.
  Rng rng(404);
  PolygonSpec spec;
  spec.query_size_fraction = 0.2;
  for (int trial = 0; trial < 20; ++trial) {
    const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
    const double x0 = rng.Uniform(0.0, 0.9);
    const double y0 = rng.Uniform(0.0, 0.9);
    const Box box = Box::FromExtents(x0, y0, x0 + rng.Uniform(0.01, 0.1),
                                     y0 + rng.Uniform(0.01, 0.1));
    int inside_samples = 0;
    const int kSamples = 15;
    for (int sx = 0; sx <= kSamples; ++sx) {
      for (int sy = 0; sy <= kSamples; ++sy) {
        const Point p{box.min.x + box.Width() * sx / kSamples,
                      box.min.y + box.Height() * sy / kSamples};
        if (poly.Contains(p)) ++inside_samples;
      }
    }
    const int total = (kSamples + 1) * (kSamples + 1);
    if (poly.ContainsBox(box)) {
      EXPECT_EQ(inside_samples, total) << "trial " << trial;
    }
    if (!poly.IntersectsBox(box)) {
      EXPECT_EQ(inside_samples, 0) << "trial " << trial;
    }
    if (inside_samples == total) {
      // Fully sampled-inside boxes must at least intersect.
      EXPECT_TRUE(poly.IntersectsBox(box)) << "trial " << trial;
    }
  }
}

class GridSweepQueryTest : public ::testing::Test {
 protected:
  GridSweepQueryTest() {
    Rng rng(808);
    db_ = std::make_unique<PointDatabase>(
        GenerateUniformPoints(5000, kUnit, &rng));
  }
  std::unique_ptr<PointDatabase> db_;
};

TEST_F(GridSweepQueryTest, MatchesBruteForceOnPaperWorkload) {
  const GridSweepAreaQuery sweep(db_.get());
  const BruteForceAreaQuery brute(db_.get());
  Rng qrng(809);
  for (const double qs : {0.01, 0.08, 0.32}) {
    PolygonSpec spec;
    spec.query_size_fraction = qs;
    for (int rep = 0; rep < 15; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
      EXPECT_EQ(sweep.Run(area, nullptr), brute.Run(area, nullptr))
          << "qs " << qs << " rep " << rep;
    }
  }
}

TEST_F(GridSweepQueryTest, ValidatesOnlyBoundaryCells) {
  const GridSweepAreaQuery sweep(db_.get());
  const TraditionalAreaQuery trad(db_.get());
  PolygonSpec spec;
  spec.query_size_fraction = 0.25;  // Big area: many interior cells.
  Rng qrng(810);
  const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
  QueryStats ss, ts;
  const auto sr = sweep.Run(area, &ss);
  const auto tr = trad.Run(area, &ts);
  EXPECT_EQ(sr, tr);
  // Grid-sweep validated far fewer points than it returned: interior
  // cells were accepted wholesale.
  EXPECT_LT(ss.candidates, ss.results);
  // But every returned record was fetched.
  EXPECT_GE(ss.geometry_loads, ss.results);
  // Redundancy well below the window filter's.
  EXPECT_LT(ss.RedundantValidations(), ts.RedundantValidations());
}

TEST_F(GridSweepQueryTest, EmptyAndWholeDomain) {
  const GridSweepAreaQuery sweep(db_.get());
  const Polygon tiny({{2.0, 2.0}, {2.1, 2.0}, {2.05, 2.1}});  // Off-domain.
  EXPECT_TRUE(sweep.Run(tiny, nullptr).empty());
  const Polygon all = Polygon::FromBox(Box::FromExtents(-1, -1, 2, 2));
  EXPECT_EQ(sweep.Run(all, nullptr).size(), db_->size());
}

TEST_F(GridSweepQueryTest, ConcaveNotchExcluded) {
  const Polygon l = LShape();
  const GridSweepAreaQuery sweep(db_.get());
  const auto result = sweep.Run(l, nullptr);
  for (const PointId id : result) {
    EXPECT_TRUE(l.Contains(db_->points()[id]));
  }
  EXPECT_EQ(result, BruteForceAreaQuery(db_.get()).Run(l, nullptr));
}

TEST(GridSweepSmallTest, HandfulOfPoints) {
  PointDatabase db(std::vector<Point>{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}});
  const GridSweepAreaQuery sweep(&db);
  const Polygon area = Polygon::FromBox(Box::FromExtents(0.4, 0.4, 0.6, 0.6));
  const auto result = sweep.Run(area, nullptr);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 1u);
}

}  // namespace
}  // namespace vaq
